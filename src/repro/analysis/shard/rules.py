"""The shard-affinity rules R15–R19 (the ``--shard`` pass).

Where R11–R14 chase host nondeterminism, these five rules chase
*ownership*: state that the sharded parallel engine (ROADMAP item 1)
could not partition by site or host without silent coupling.

* **R15** ``process-global-mutable-state`` — a module- or class-level
  mutable that is actually written at runtime.  Read-only lookup
  tables stay silent; a dict that any code path mutates is visible to
  every shard in the process.
* **R16** ``cross-entity-direct-mutation`` — a host-family method
  directly writing attributes of a site-family object (or vice versa)
  without an intervening kernel event.  These writes are exactly the
  edges that need lookahead-mediated events once entities live on
  different cores.  Resolution is by parameter annotation — the
  deliberate, documented approximation of this pass.
* **R17** ``unkeyed-process-cache`` — memo state whose lifetime is the
  process, not a simulation: cache-named module mutables that are
  written, ``functools.cache``/``lru_cache(maxsize=None)`` sites, and
  ``lru_cache`` on methods of non-frozen classes (instance-identity
  keys pin objects for the process lifetime).  Bounded ``lru_cache``
  on a frozen dataclass method is the sanctioned pattern and stays
  silent.
* **R18** ``non-mergeable-accumulator`` — a statistics class with a
  sample-intake method (``add``/``observe``/``record``/``inc``/
  ``sample``) mutating numeric instance state but no ``merge`` method
  (own or inherited from a project-known base): per-shard parts of it
  cannot be folded deterministically.
* **R19** ``shared-event-queue-escape`` — scheduling through another
  component's ``.sim`` handle (``other.sim.timeout(...)``), or
  triggering (``succeed``/``fail``) an event reached through a
  foreign-family parameter: both push work onto a timeline the caller
  does not own.

Shard rules register with :func:`register_shard` and yield the same
:class:`~repro.analysis.core.Finding` objects as every other pass, so
suppressions, SARIF export and the baseline ratchet apply unchanged.
"""

from __future__ import annotations

import ast
from typing import Iterator, List, Optional, Type

from repro.analysis.core import Finding
from repro.analysis.shard.model import (
    HOST,
    SITE,
    CacheSite,
    MutableLocation,
    ShardModel,
    _MUTATOR_METHODS,
    _dotted,
    _is_self_attr,
    _own_nodes,
)

__all__ = ["ShardRule", "register_shard", "shard_rules",
           "registered_shard_rule_classes",
           "ProcessGlobalMutableStateRule",
           "CrossEntityDirectMutationRule", "UnkeyedProcessCacheRule",
           "NonMergeableAccumulatorRule", "SharedEventQueueEscapeRule"]

#: Import-time registry of shard rule classes; append-only, populated
#: by the ``register_shard`` decorations below and never written after
#: import.  # simlint: disable-file=R15
_SHARD_REGISTRY: List[Type["ShardRule"]] = []


def register_shard(rule_class: Type["ShardRule"]) -> Type["ShardRule"]:
    """Class decorator: add a ShardRule subclass to the shard rule set."""
    if not (isinstance(rule_class, type)
            and issubclass(rule_class, ShardRule)):
        raise TypeError("register_shard() expects a ShardRule subclass, "
                        "got %r" % (rule_class,))
    if any(existing.code == rule_class.code
           for existing in _SHARD_REGISTRY):
        raise ValueError("duplicate shard rule code %s" % rule_class.code)
    _SHARD_REGISTRY.append(rule_class)
    return rule_class


def registered_shard_rule_classes() -> List[Type["ShardRule"]]:
    """The registered classes, sorted by code."""
    return sorted(_SHARD_REGISTRY,
                  key=lambda cls: (len(cls.code), cls.code))


def shard_rules() -> List["ShardRule"]:
    """Fresh instances of every registered shard rule."""
    return [cls() for cls in registered_shard_rule_classes()]


class ShardRule:
    """Base class for shard-affinity rules.

    Subclasses set ``code``/``name`` and implement :meth:`check_model`,
    yielding :class:`~repro.analysis.core.Finding` objects over a
    :class:`~repro.analysis.shard.model.ShardModel`.
    """

    code: str = "R0"
    name: str = "abstract-shard-rule"

    def check_model(self, model: ShardModel) -> Iterator[Finding]:
        """Yield findings over the shard-affinity model."""
        return iter(())  # pragma: no cover

    def finding(self, path: str, node: ast.AST, message: str) -> Finding:
        return Finding(path, getattr(node, "lineno", 1),
                       getattr(node, "col_offset", 0) + 1,
                       self.code, self.name, message)

    def __repr__(self) -> str:
        return "<ShardRule %s %s>" % (self.code, self.name)


def _mutation_summary(location: MutableLocation) -> str:
    sites = location.mutations
    first = min(sites, key=lambda s: (s.module.path, s.node.lineno))
    extra = "" if len(sites) == 1 \
        else " and %d more site(s)" % (len(sites) - 1)
    return "written at %s%s" % (first.where, extra)


@register_shard
class ProcessGlobalMutableStateRule(ShardRule):
    """R15: a module/class-level mutable that is written at runtime."""

    code = "R15"
    name = "process-global-mutable-state"

    def check_model(self, model: ShardModel) -> Iterator[Finding]:
        for location in model.sorted_locations():
            if not location.mutations or location.is_cache_named:
                continue  # read-only tables are fine; caches are R17's
            scope = "class-level" if location.class_name else \
                "module-level"
            what = "binding %r is rebound through `global`," \
                if location.kind == "binding" else "mutable %r is"
            yield self.finding(
                location.module.path, location.node,
                ("%s " + what + " %s — process-global state is shared "
                 "by every shard; own it by a Simulation "
                 "(sim.model_cache) or justify why it never couples "
                 "worlds") % (scope, location.label,
                              _mutation_summary(location)))


@register_shard
class CrossEntityDirectMutationRule(ShardRule):
    """R16: host-family code mutating a site-family object, or back."""

    code = "R16"
    name = "cross-entity-direct-mutation"

    def check_model(self, model: ShardModel) -> Iterator[Finding]:
        for module_name in sorted(model.project.modules):
            module = model.project.modules[module_name]
            family = model.family(module_name)
            if family not in (HOST, SITE):
                continue  # shared orchestration may touch anything
            for key in sorted(module.functions):
                info = module.functions[key]
                yield from self._check_function(model, module, family,
                                                info)

    def _check_function(self, model: ShardModel, module, family,
                        info) -> Iterator[Finding]:
        foreign = _foreign_params(model, module, family, info)
        if not foreign:
            return
        for node in _own_nodes(info.node):
            target: Optional[ast.AST] = None
            verb = "writes"
            if isinstance(node, (ast.Assign, ast.AugAssign)):
                targets = node.targets if isinstance(node, ast.Assign) \
                    else [node.target]
                for candidate in targets:
                    if isinstance(candidate, (ast.Attribute,
                                              ast.Subscript)):
                        target = candidate
            elif isinstance(node, ast.Call) and \
                    isinstance(node.func, ast.Attribute):
                if node.func.attr in _MUTATOR_METHODS:
                    target = node.func
                    verb = "mutates"
            if target is None:
                continue
            root = _chain_root(target)
            if root is None or root not in foreign:
                continue
            other_family, other_class = foreign[root]
            yield self.finding(
                module.path, node,
                "%s-affine %s directly %s state of %s-affine %s "
                "(parameter %r) — route the change through a kernel "
                "event so the sharded engine can mediate it with "
                "lookahead" % (family, info.qualname, verb,
                               other_family, other_class, root))


def _foreign_params(model: ShardModel, module, family, info):
    """Params annotated with a class of the *other* concrete family."""
    foreign = {}
    for param in info.params:
        if param in ("self", "cls"):
            continue
        klass = model.annotated_class(module, info.node, param)
        if klass is None:
            continue
        other = model.class_family(klass)
        if other in (HOST, SITE) and other != family:
            foreign[param] = (other, klass.name)
    return foreign


def _chain_root(node: ast.AST) -> Optional[str]:
    while isinstance(node, (ast.Attribute, ast.Subscript)):
        node = node.value
    if isinstance(node, ast.Name):
        return node.id
    return None


@register_shard
class UnkeyedProcessCacheRule(ShardRule):
    """R17: memo state whose lifetime is the process, not a simulation."""

    code = "R17"
    name = "unkeyed-process-cache"

    def check_model(self, model: ShardModel) -> Iterator[Finding]:
        for location in model.sorted_locations():
            if location.mutations and location.is_cache_named:
                yield self.finding(
                    location.module.path, location.node,
                    "process-wide cache %r (%s) outlives every "
                    "simulation — key it by a simulation-owned "
                    "generation (sim.model_cache) or document why "
                    "value-keyed sharing cannot couple worlds"
                    % (location.label, _mutation_summary(location)))
        for site in model.cache_sites:
            yield from self._check_cache_site(site)

    def _check_cache_site(self, site: CacheSite) -> Iterator[Finding]:
        info = site.function
        if site.explicit_unbounded:
            yield self.finding(
                info.module.path, site.node,
                "unbounded functools cache on %s() grows for the "
                "process lifetime and is shared by every shard; give "
                "it a maxsize and value-typed keys" % info.qualname)
        elif info.class_name is not None and not site.frozen_dataclass:
            yield self.finding(
                info.module.path, site.node,
                "lru_cache on method %s() of a non-frozen class keys "
                "by instance identity: entries pin instances "
                "process-wide and never hit across worlds; make the "
                "class a frozen dataclass or move the memo onto the "
                "instance" % info.qualname)


#: Method names that take one sample into a statistics object.
_INTAKE_NAMES = ("add", "observe", "record", "inc", "sample")


@register_shard
class NonMergeableAccumulatorRule(ShardRule):
    """R18: a sample-taking stats class without a deterministic merge."""

    code = "R18"
    name = "non-mergeable-accumulator"

    def check_model(self, model: ShardModel) -> Iterator[Finding]:
        for qualname in sorted(model.project.classes):
            klass = model.project.classes[qualname]
            intakes = [name for name in _INTAKE_NAMES
                       if self._is_intake(klass, name)]
            if not intakes:
                continue
            if model.project.method(klass, "merge") is not None:
                continue
            yield self.finding(
                klass.module.path, klass.node,
                "%s accumulates samples via %s() but defines no "
                "merge(): per-shard parts cannot be folded back "
                "deterministically — add a merge and fold parts in "
                "creation order" % (klass.name,
                                    "/".join(intakes)))

    def _is_intake(self, klass, name: str) -> bool:
        info = klass.module.functions.get("%s.%s" % (klass.name, name))
        if info is None:
            return False
        for node in _own_nodes(info.node):
            if isinstance(node, ast.AugAssign) and \
                    _is_self_attr(node.target):
                return True
            if isinstance(node, ast.Call) and \
                    isinstance(node.func, ast.Attribute) and \
                    node.func.attr == "append" and \
                    _is_self_attr(node.func.value):
                return True
        return False


#: ``sim`` factory methods that enqueue onto a timeline.
_SCHEDULING_FACTORIES = frozenset({"timeout", "event", "spawn",
                                   "process", "all_of", "any_of"})


@register_shard
class SharedEventQueueEscapeRule(ShardRule):
    """R19: events pushed onto a timeline the caller does not own."""

    code = "R19"
    name = "shared-event-queue-escape"

    def check_model(self, model: ShardModel) -> Iterator[Finding]:
        for module_name in sorted(model.project.modules):
            module = model.project.modules[module_name]
            family = model.family(module_name)
            if family not in (HOST, SITE):
                continue
            for key in sorted(module.functions):
                info = module.functions[key]
                foreign = _foreign_params(model, module, family, info)
                params = set(info.params) - {"self", "cls"}
                for node in _own_nodes(info.node):
                    if not (isinstance(node, ast.Call) and
                            isinstance(node.func, ast.Attribute)):
                        continue
                    yield from self._check_call(module, family, info,
                                                node, params, foreign)

    def _check_call(self, module, family, info, node: ast.Call,
                    params, foreign) -> Iterator[Finding]:
        dotted = _dotted(node.func)
        if dotted is None:
            return
        parts = dotted.split(".")
        # (a) other.sim.timeout(...) — scheduling through a foreign
        # component's sim handle.
        if (len(parts) >= 3 and parts[-2] == "sim"
                and parts[-1] in _SCHEDULING_FACTORIES
                and parts[0] in params):
            yield self.finding(
                module.path, node,
                "%s schedules onto %r's timeline through its .sim "
                "handle (%s) — in the sharded engine that queue "
                "belongs to another partition; deliver the work as a "
                "latency-mediated event instead"
                % (info.qualname, parts[0], dotted))
            return
        # (b) foreign.done.succeed(...) — triggering an event owned by
        # an entity of the other family.
        if parts[-1] in ("succeed", "fail") and len(parts) >= 2 \
                and parts[0] in foreign:
            other_family, other_class = foreign[parts[0]]
            yield self.finding(
                module.path, node,
                "%s %ss an event owned by %s-affine %s (parameter %r) "
                "directly — completion must be delivered through the "
                "owner's event queue to stay shardable"
                % (info.qualname, parts[-1], other_family, other_class,
                   parts[0]))
