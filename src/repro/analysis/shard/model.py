"""The shard-affinity model: who owns each mutable location.

ROADMAP item 1 (the sharded, conservatively-synchronized multi-core
kernel) partitions the simulated grid by site or host and runs each
partition on its own core, exchanging only latency-mediated events.
That refactor is safe exactly when every piece of mutable state has a
single owning partition.  This module classifies ownership statically,
over the same never-imported AST representation the dataflow pass uses
(:mod:`repro.analysis.dataflow.symbols`):

* **entity families** — each module belongs to one of three families
  derived from its dotted name: ``host`` (hardware, guest OS, VMM,
  storage — state pinned to one physical machine), ``site``
  (middleware services and DHCP — state pinned to one site), or
  ``shared`` (kernel, observability, orchestration — deliberately
  partition-neutral);
* **mutable locations** — module-level and class-level names bound to
  mutable initializers (dict/list/set literals and comprehensions,
  ``dict()``/``defaultdict()``/``deque()``/``itertools.count()``),
  together with every *mutation site* that writes them (``global``
  rebinding, subscript stores, augmented assignment, mutating method
  calls, ``next()`` on counters) anywhere in the project;
* **process-wide cache sites** — ``functools.lru_cache`` / ``cache``
  decorations, with their bound and whether the decorated method's
  class is a frozen dataclass (the value-keyed pattern that cannot pin
  instances);
* **self-attribute writes** — per-class counts of ordinary
  ``self.attr`` mutation, the shard-local bulk the inventory reports.

The three lattice values — :data:`LOCAL`, :data:`CROSSING`,
:data:`GLOBAL` — order as ``LOCAL < CROSSING < GLOBAL``: a location is
shard-local until evidence promotes it.  Rules R15–R19
(:mod:`repro.analysis.shard.rules`) read this model; the generated
``docs/shard-safety.md`` inventory (:mod:`repro.analysis.shard.
inventory`) renders all of it with file:line provenance.
"""

from __future__ import annotations

import ast
import re
from typing import Dict, Iterable, List, Optional, Set, Tuple

from repro.analysis.dataflow.symbols import (
    ClassInfo,
    FunctionInfo,
    ModuleInfo,
    ProjectModel,
    build_project,
)

__all__ = ["LOCAL", "CROSSING", "GLOBAL", "HOST", "SITE", "SHARED",
           "MutableLocation", "MutationSite", "CacheSite", "ShardModel",
           "family_of_module", "build_shard_model"]

# -- the lattice -----------------------------------------------------------

#: Reachable from exactly one site/host entity; safe to partition.
LOCAL = "shard-local"
#: Written by one entity family, read or written by another; needs a
#: lookahead-mediated event in the sharded engine.
CROSSING = "shard-crossing"
#: Module- or class-level mutable state visible to every partition in
#: the process; must be owned by a Simulation or proven read-only.
GLOBAL = "process-global"

# -- entity families -------------------------------------------------------

HOST = "host"
SITE = "site"
SHARED = "shared"

#: Dotted-name components that pin a module's state to one physical
#: machine (a host shard under ``--shard-model host``).
_HOST_COMPONENTS = frozenset({"hardware", "guestos", "vmm", "storage"})
#: Components that pin state to one site (middleware services, DHCP).
_SITE_COMPONENTS = frozenset({"middleware", "dhcp"})


def family_of_module(name: str) -> str:
    """The entity family of a dotted module name.

    Site components are checked first so ``gridnet.dhcp`` lands in the
    site family even though the rest of ``gridnet`` is shared.
    """
    parts = set(name.split("."))
    if parts & _SITE_COMPONENTS:
        return SITE
    if parts & _HOST_COMPONENTS:
        return HOST
    return SHARED


#: Mutable-location names that look like memo tables; R17 claims these
#: so R15 does not double-report the same line.
_CACHE_NAME_RE = re.compile(r"cache|memo", re.IGNORECASE)

#: Method names that mutate their receiver in place.
_MUTATOR_METHODS = frozenset({
    "append", "appendleft", "extend", "extendleft", "insert", "add",
    "update", "setdefault", "pop", "popleft", "popitem", "remove",
    "discard", "clear", "__setitem__",
})

#: Callables whose result is a mutable container (by expanded name).
_MUTABLE_CONSTRUCTORS = {
    "dict": "dict", "list": "list", "set": "set",
    "collections.defaultdict": "dict", "collections.OrderedDict": "dict",
    "collections.deque": "deque", "collections.Counter": "dict",
    "itertools.count": "counter",
}


class MutationSite:
    """One write to a mutable location."""

    __slots__ = ("module", "node", "how")

    def __init__(self, module: ModuleInfo, node: ast.AST, how: str):
        self.module = module
        self.node = node
        #: "rebind" | "subscript" | "augassign" | "method-call" | "next"
        self.how = how

    @property
    def where(self) -> str:
        return "%s:%d" % (self.module.path,
                          getattr(self.node, "lineno", 1))

    def __repr__(self) -> str:
        return "<MutationSite %s %s>" % (self.how, self.where)


class MutableLocation:
    """One module- or class-level name bound to a mutable value."""

    __slots__ = ("module", "name", "class_name", "node", "kind",
                 "mutations")

    def __init__(self, module: ModuleInfo, name: str, node: ast.AST,
                 kind: str, class_name: Optional[str] = None):
        self.module = module
        self.name = name
        self.class_name = class_name
        self.node = node
        #: "dict" | "list" | "set" | "deque" | "counter"
        self.kind = kind
        self.mutations: List[MutationSite] = []

    @property
    def label(self) -> str:
        """The name as written at the definition site."""
        if self.class_name is None:
            return self.name
        return "%s.%s" % (self.class_name, self.name)

    @property
    def qualname(self) -> str:
        return "%s.%s" % (self.module.name, self.label)

    @property
    def is_cache_named(self) -> bool:
        return bool(_CACHE_NAME_RE.search(self.name))

    @property
    def affinity(self) -> str:
        """Lattice value: GLOBAL once any mutation site exists."""
        return GLOBAL if self.mutations else LOCAL

    def __repr__(self) -> str:
        return "<MutableLocation %s (%d mutation(s))>" % (
            self.qualname, len(self.mutations))


class CacheSite:
    """One ``functools.lru_cache`` / ``functools.cache`` decoration."""

    __slots__ = ("function", "node", "maxsize", "explicit_unbounded",
                 "frozen_dataclass")

    def __init__(self, function: FunctionInfo, node: ast.AST,
                 maxsize: Optional[int], explicit_unbounded: bool,
                 frozen_dataclass: bool):
        self.function = function
        #: The decorator node (findings anchor here).
        self.node = node
        self.maxsize = maxsize
        self.explicit_unbounded = explicit_unbounded
        #: True when the decorated method's class is a frozen dataclass
        #: (value-keyed: cannot pin mutable instances process-wide).
        self.frozen_dataclass = frozen_dataclass

    @property
    def bounded(self) -> bool:
        return not self.explicit_unbounded

    @property
    def where(self) -> str:
        return "%s:%d" % (self.function.module.path,
                          getattr(self.node, "lineno", 1))

    def __repr__(self) -> str:
        return "<CacheSite %s maxsize=%r>" % (self.function.qualname,
                                              self.maxsize)


class ShardModel:
    """The project plus everything the shard rules need to classify."""

    def __init__(self, project: ProjectModel):
        self.project = project
        #: (module name, location label) -> MutableLocation.
        self.locations: Dict[Tuple[str, str], MutableLocation] = {}
        #: Module-level names bound to *immutable* initializers; they
        #: become locations (kind "binding") only when some function
        #: rebinds them through ``global`` — the warm-pool pattern.
        self._bindings: Dict[Tuple[str, str],
                             Tuple[ModuleInfo, ast.AST]] = {}
        self.cache_sites: List[CacheSite] = []
        #: Class qualname -> number of ``self.attr`` writes in its own
        #: methods (the shard-local bulk, reported by the inventory).
        self.self_writes: Dict[str, int] = {}
        self._collect()

    # -- lookups -----------------------------------------------------------

    def family(self, module_name: str) -> str:
        return family_of_module(module_name)

    def class_family(self, klass: ClassInfo) -> str:
        return family_of_module(klass.module.name)

    def sorted_locations(self) -> List[MutableLocation]:
        return [self.locations[key] for key in sorted(self.locations)]

    def annotated_class(self, module: ModuleInfo, func: ast.AST,
                        param: str) -> Optional[ClassInfo]:
        """The project class a parameter's annotation resolves to."""
        for arg in getattr(func.args, "args", []):
            if arg.arg != param or arg.annotation is None:
                continue
            dotted = _dotted(arg.annotation)
            if dotted is None:
                return None
            expanded = self.project.expand(module, dotted)
            klass = self.project.classes.get(expanded)
            if klass is None:
                klass = module.classes.get(dotted)
            return klass
        return None

    # -- construction ------------------------------------------------------

    def _collect(self) -> None:
        for name in sorted(self.project.modules):
            module = self.project.modules[name]
            self._collect_locations(module)
            self._collect_cache_sites(module)
            self._collect_self_writes(module)
        for name in sorted(self.project.modules):
            self._collect_mutations(self.project.modules[name])

    def _collect_locations(self, module: ModuleInfo) -> None:
        for node in _toplevel(module.tree.body):
            if isinstance(node, ast.ClassDef):
                for child in _toplevel(node.body):
                    self._maybe_location(module, child,
                                         class_name=node.name)
            else:
                self._maybe_location(module, node)

    def _maybe_location(self, module: ModuleInfo, node: ast.AST,
                        class_name: Optional[str] = None) -> None:
        if isinstance(node, ast.Assign):
            targets, value = node.targets, node.value
        elif isinstance(node, ast.AnnAssign) and node.value is not None:
            targets, value = [node.target], node.value
        else:
            return
        kind = self._mutable_kind(module, value)
        for target in targets:
            if not isinstance(target, ast.Name):
                continue
            label = target.id if class_name is None \
                else "%s.%s" % (class_name, target.id)
            key = (module.name, label)
            if kind is None:
                if class_name is None and key not in self._bindings:
                    self._bindings[key] = (module, node)
                continue
            self.locations[key] = MutableLocation(
                module, target.id, node, kind, class_name=class_name)

    def _mutable_kind(self, module: ModuleInfo,
                      value: ast.AST) -> Optional[str]:
        if isinstance(value, ast.Dict) or isinstance(value, ast.DictComp):
            return "dict"
        if isinstance(value, (ast.List, ast.ListComp)):
            return "list"
        if isinstance(value, (ast.Set, ast.SetComp)):
            return "set"
        if isinstance(value, ast.Call):
            dotted = _dotted(value.func)
            if dotted is not None:
                expanded = self.project.expand(module, dotted)
                return _MUTABLE_CONSTRUCTORS.get(expanded)
        return None

    def _collect_cache_sites(self, module: ModuleInfo) -> None:
        for info in module.functions.values():
            for decorator in getattr(info.node, "decorator_list", []):
                site = self._cache_decoration(module, info, decorator)
                if site is not None:
                    self.cache_sites.append(site)
        self.cache_sites.sort(key=lambda s: (s.function.module.path,
                                             s.node.lineno))

    def _cache_decoration(self, module: ModuleInfo, info: FunctionInfo,
                          decorator: ast.AST) -> Optional[CacheSite]:
        call = decorator if isinstance(decorator, ast.Call) else None
        target = call.func if call is not None else decorator
        dotted = _dotted(target)
        if dotted is None:
            return None
        expanded = module.imports.get(dotted,
                                      self.project.expand(module, dotted))
        if expanded not in ("functools.lru_cache", "functools.cache"):
            return None
        if expanded == "functools.cache":
            maxsize: Optional[int] = None
            unbounded = True
        elif call is None:
            maxsize, unbounded = 128, False  # bare @lru_cache
        else:
            maxsize, unbounded = _lru_maxsize(call)
        frozen = False
        if info.class_name is not None:
            klass = module.classes.get(info.class_name)
            frozen = klass is not None and \
                _is_frozen_dataclass(self.project, module, klass)
        return CacheSite(info, decorator, maxsize, unbounded, frozen)

    def _collect_self_writes(self, module: ModuleInfo) -> None:
        for info in module.functions.values():
            if info.class_name is None:
                continue
            qualname = "%s.%s" % (module.name, info.class_name)
            count = self.self_writes.get(qualname, 0)
            for node in _own_nodes(info.node):
                if isinstance(node, (ast.Assign, ast.AugAssign)):
                    targets = node.targets \
                        if isinstance(node, ast.Assign) else [node.target]
                    for target in targets:
                        if _is_self_attr(target):
                            count += 1
            self.self_writes[qualname] = count

    # -- mutation scan -----------------------------------------------------

    def _collect_mutations(self, module: ModuleInfo) -> None:
        # Module-level statements first (import-time population), then
        # each function body under its own local-scope rules.
        self._scan_scope(module, module.tree, is_function=False)
        for info in module.functions.values():
            self._scan_scope(module, info.node, is_function=True,
                             params=set(info.params))

    def _scan_scope(self, module: ModuleInfo, scope: ast.AST,
                    is_function: bool,
                    params: Optional[Set[str]] = None) -> None:
        declared_global: Set[str] = set()
        local_names: Set[str] = set(params or ())
        nodes = list(_own_nodes(scope))
        if is_function:
            for node in nodes:
                if isinstance(node, ast.Global):
                    declared_global.update(node.names)
            for node in nodes:
                if isinstance(node, (ast.Assign, ast.AugAssign)):
                    targets = node.targets \
                        if isinstance(node, ast.Assign) else [node.target]
                    for target in targets:
                        if isinstance(target, ast.Name) and \
                                target.id not in declared_global:
                            local_names.add(target.id)
                elif isinstance(node, (ast.For, ast.comprehension)):
                    target = node.target
                    for leaf in ast.walk(target):
                        if isinstance(leaf, ast.Name):
                            local_names.add(leaf.id)

        def refers_to_module(name: str) -> bool:
            if not is_function:
                return True
            return name in declared_global or name not in local_names

        for node in nodes:
            self._scan_node(module, node, is_function, declared_global,
                            refers_to_module)

    def _scan_node(self, module: ModuleInfo, node: ast.AST,
                   is_function: bool, declared_global: Set[str],
                   refers_to_module) -> None:
        if isinstance(node, (ast.Assign, ast.AugAssign)):
            how = "augassign" if isinstance(node, ast.AugAssign) \
                else "rebind"
            targets = node.targets if isinstance(node, ast.Assign) \
                else [node.target]
            for target in targets:
                if isinstance(target, ast.Name):
                    # A module-level rebind of a tracked location is a
                    # mutation only inside a function (via ``global``);
                    # at module level the defining assignment itself
                    # would match.
                    if is_function and target.id in declared_global:
                        self._record(module, target.id, node, how)
                elif isinstance(target, ast.Subscript):
                    self._record_chain(module, target.value, node,
                                       "subscript", refers_to_module)
        elif isinstance(node, ast.Delete):
            for target in node.targets:
                if isinstance(target, ast.Subscript):
                    self._record_chain(module, target.value, node,
                                       "subscript", refers_to_module)
        elif isinstance(node, ast.Call):
            func = node.func
            if isinstance(func, ast.Attribute) and \
                    func.attr in _MUTATOR_METHODS:
                self._record_chain(module, func.value, node,
                                   "method-call", refers_to_module)
            elif isinstance(func, ast.Name) and func.id == "next" \
                    and node.args:
                self._record_chain(module, node.args[0], node, "next",
                                   refers_to_module, counters_only=True)

    def _record_chain(self, module: ModuleInfo, base: ast.AST,
                      node: ast.AST, how: str, refers_to_module,
                      counters_only: bool = False) -> None:
        """Attribute/Name chain -> tracked location, if any."""
        dotted = _dotted(base)
        if dotted is None:
            return
        parts = dotted.split(".")
        candidates: List[Tuple[str, str]] = []
        if len(parts) == 1:
            if refers_to_module(parts[0]):
                candidates.append((module.name, parts[0]))
        else:
            # ``Class.attr`` in this module, or ``alias.NAME`` /
            # ``alias.Class.attr`` through an import.
            candidates.append((module.name, dotted))
            expanded = self.project.expand(module, dotted)
            if expanded != dotted and "." in expanded:
                for cut in (1, 2):
                    if len(expanded.rsplit(".", cut)) == cut + 1:
                        head = expanded.rsplit(".", cut)
                        candidates.append((head[0], ".".join(head[1:])))
        for key in candidates:
            location = self.locations.get(key)
            if location is None:
                continue
            if counters_only and location.kind != "counter":
                continue
            location.mutations.append(MutationSite(module, node, how))
            return

    def _record(self, module: ModuleInfo, name: str, node: ast.AST,
                how: str) -> None:
        key = (module.name, name)
        location = self.locations.get(key)
        if location is None:
            binding = self._bindings.get(key)
            if binding is None:
                return
            owner, def_node = binding
            location = self.locations[key] = MutableLocation(
                owner, name, def_node, "binding")
        location.mutations.append(MutationSite(module, node, how))

    def __repr__(self) -> str:
        mutated = sum(1 for loc in self.locations.values()
                      if loc.mutations)
        return "<ShardModel %d location(s), %d mutated, %d cache site(s)>" \
            % (len(self.locations), mutated, len(self.cache_sites))


def build_shard_model(paths: Iterable[str]) -> ShardModel:
    """Parse ``paths`` and build the shard-affinity model."""
    return ShardModel(build_project(paths))


# -- AST helpers -----------------------------------------------------------

def _toplevel(body: Iterable[ast.AST]) -> Iterable[ast.AST]:
    """Statements at one nesting level, descending into If/Try arms."""
    for node in body:
        if isinstance(node, (ast.If, ast.Try)):
            for child in ast.iter_child_nodes(node):
                if isinstance(child, ast.stmt):
                    yield child
        else:
            yield node


def _own_nodes(scope: ast.AST):
    """Every node in ``scope``, not descending into nested defs."""
    todo = list(ast.iter_child_nodes(scope))
    while todo:
        node = todo.pop()
        yield node
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef,
                             ast.Lambda, ast.ClassDef)):
            continue
        todo.extend(ast.iter_child_nodes(node))


def _is_self_attr(node: ast.AST) -> bool:
    return (isinstance(node, ast.Attribute)
            and isinstance(node.value, ast.Name)
            and node.value.id == "self")


def _dotted(node: ast.AST) -> Optional[str]:
    parts: List[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
        return ".".join(reversed(parts))
    return None


def _lru_maxsize(call: ast.Call) -> Tuple[Optional[int], bool]:
    """(maxsize, explicitly_unbounded) for an ``lru_cache(...)`` call."""
    value: Optional[ast.AST] = None
    for keyword in call.keywords:
        if keyword.arg == "maxsize":
            value = keyword.value
    if value is None and call.args:
        value = call.args[0]
    if value is None:
        return 128, False
    if isinstance(value, ast.Constant):
        if value.value is None:
            return None, True
        if isinstance(value.value, int):
            return value.value, False
    return None, False  # dynamic bound: treat as bounded-by-intent


def _is_frozen_dataclass(project: ProjectModel, module: ModuleInfo,
                         klass: ClassInfo) -> bool:
    for decorator in klass.node.decorator_list:
        call = decorator if isinstance(decorator, ast.Call) else None
        target = call.func if call is not None else decorator
        dotted = _dotted(target)
        if dotted is None:
            continue
        expanded = module.imports.get(dotted,
                                      project.expand(module, dotted))
        if expanded not in ("dataclasses.dataclass", "dataclass"):
            continue
        if call is None:
            return False  # plain @dataclass is not frozen
        for keyword in call.keywords:
            if keyword.arg == "frozen" and \
                    isinstance(keyword.value, ast.Constant):
                return bool(keyword.value.value)
        return False
    return False
