"""simlint: determinism & sim-correctness static analysis for the DES stack.

The repo's scientific claim — that it reproduces the paper's figures —
only holds if every simulation run is bit-for-bit reproducible and the
event kernel is used correctly.  ``repro.analysis`` is an AST-based
static-analysis framework ("simlint") that enforces exactly that:

* every random draw must come from a named
  :class:`~repro.simulation.randomness.RandomStreams` stream,
* simulated time must never leak to (or from) the wall clock,
* event scheduling must not depend on hash ordering,
* events must not be silently lost.

Run it as ``python -m repro.analysis src/repro`` or through the main
CLI as ``python -m repro analyze``.  Rules are plugins; see
:mod:`repro.analysis.rules` for the built-in set and
``docs/static_analysis.md`` for how to write new ones.
"""

from __future__ import annotations

from repro.analysis.core import (
    Analyzer,
    Finding,
    Rule,
    RuleContext,
    analyze_paths,
    analyze_source,
)
from repro.analysis.rules import default_rules, register

__all__ = [
    "Analyzer",
    "Finding",
    "Rule",
    "RuleContext",
    "analyze_paths",
    "analyze_source",
    "default_rules",
    "register",
]
