"""simsan — the runtime determinism sanitizer.

Where the static pass (:mod:`repro.analysis.dataflow`) proves what it
can about the *source*, simsan watches one concrete *run* through the
kernel's tracer hooks and reports hazards: places where the run's
outcome rests on incidental ordering rather than model logic, or where
events and resources leak.  Four hazard classes:

* ``ordering-race`` — two events scheduled at identical ``(when,
  priority)`` fire at the same instant feeding the same ``any_of``
  condition, so the winner is decided by event-id insertion order.
  The run is still reproducible, but the outcome is one refactor away
  from changing: the ordering is incidental, not modelled.
* ``resource-leak`` — a process terminated while still holding granted
  :class:`~repro.simulation.resources.Resource` slots.
* ``lost-event`` — an event fired with no callbacks and its value was
  never observed afterwards; whatever the model meant to wait for is
  gone (the runtime sibling of lint rules R4/R13).
* ``merge-order`` — :class:`~repro.simulation.monitor.StatAccumulator`
  parts merged out of creation order (or twice), which breaks the
  replication runner's canonical fold order.

The sanitizer is a :class:`~repro.obs.tracer.Tracer`: attach it with
``Simulation(tracer=DeterminismSanitizer())`` (the obs runner does this
for ``repro sanitize``).  It never mutates simulation state, so a
sanitized run produces byte-identical results to a plain one; with the
sanitizer off, the kernel pays only the usual one-boolean hook guard.

Every hazard carries the simulated time it was detected at and the
stack of open tracer spans for context.
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional, Set, Tuple

from repro.obs.tracer import Span, Tracer
from repro.simulation import monitor as _monitor

__all__ = ["Hazard", "DeterminismSanitizer",
           "ORDERING_RACE", "RESOURCE_LEAK", "LOST_EVENT", "MERGE_ORDER"]

ORDERING_RACE = "ordering-race"
RESOURCE_LEAK = "resource-leak"
LOST_EVENT = "lost-event"
MERGE_ORDER = "merge-order"

_DEFAULT_TRACK = ("sim", "main")


class Hazard:
    """One detected determinism hazard, stamped with simulated time."""

    __slots__ = ("kind", "time", "message", "spans")

    def __init__(self, kind: str, time: float, message: str,
                 spans: Tuple[str, ...]):
        self.kind = kind
        self.time = time
        self.message = message
        #: ``category/name`` labels of the spans open at detection.
        self.spans = spans

    def render(self) -> str:
        context = " [in %s]" % " > ".join(self.spans) if self.spans else ""
        return "t=%.6f %s: %s%s" % (self.time, self.kind, self.message,
                                    context)

    def __repr__(self) -> str:
        return "<Hazard %s t=%.6f>" % (self.kind, self.time)


def _is_any_of(obj: Any) -> bool:
    """Duck-typed: a Condition needing fewer sub-events than it has."""
    needed = getattr(obj, "_needed", None)
    events = getattr(obj, "_events", None)
    return (needed is not None and events is not None
            and needed < len(events))


def _is_internal_event(event: Any) -> bool:
    """Events whose values are legitimately unobserved.

    Process termination events are waited on only when another process
    cares; ``Initialize`` is kernel plumbing; underscore-named classes
    (``_StorePut``, ``_ContainerOp``) are handles whose completion many
    models deliberately ignore.
    """
    name = type(event).__name__
    if name.startswith("_") or name == "Initialize":
        return True
    return hasattr(event, "is_alive")  # Process (and subclasses)


class DeterminismSanitizer(Tracer):
    """Tracer that audits a run for determinism hazards (simsan)."""

    enabled = True

    def __init__(self):
        self.sim = None
        self.hazards: List[Hazard] = []  # simlint: disable=R23  the sanitizer's product: a hazard report sized by defects found, not by events
        self._finished = False
        # H1: per-instant map id(condition) -> ((when, priority), cond).
        self._cond_fires: Dict[int, Tuple[Tuple[float, int], Any]] = {}
        self._reported_conds: Set[int] = set()  # simlint: disable=R23  dedupe keys for reported hazards; bounded by the hazard report itself
        # Scheduled-entry bookkeeping: id(event) -> (when, priority).
        self._sched: Dict[int, Tuple[float, int]] = {}
        # H2: id(process) -> (process, {id(request): request}).
        self._held: Dict[int, Tuple[Any, Dict[int, Any]]] = {}
        # H3: id(event) -> (event, fire time, open spans at firing).
        self._unobserved: Dict[int, Tuple[Any, float,
                                          Tuple[str, ...]]] = {}
        # H4: id(target) -> (target, seq of last part merged in).
        self._merge_seq: Dict[int, Tuple[Any, int]] = {}
        # Span stack for hazard context.
        self._open: List[Span] = []
        self._installed_audit = False

    # -- lifecycle ---------------------------------------------------------

    def bind(self, sim) -> None:
        if self.sim is not None and self.sim is not sim:
            raise RuntimeError("sanitizer is already bound to another "
                               "simulation; use one per run")
        self.sim = sim
        if not self._installed_audit:
            _monitor.set_merge_audit(self._on_merge)
            self._installed_audit = True

    def finish(self) -> List[Hazard]:
        """Flush deferred hazards, detach the merge audit, and report.

        Lost-event hazards are only decided here: an event fired with no
        callbacks may still be observed later through the
        already-processed yield path, so candidates are held until the
        run is over.  Idempotent.
        """
        if not self._finished:
            self._finished = True
            if self._installed_audit:
                _monitor.set_merge_audit(None)
                self._installed_audit = False
            for _eid in sorted(self._unobserved):
                event, when, spans = self._unobserved[_eid]
                self.hazards.append(Hazard(
                    LOST_EVENT, when,
                    "%s fired with no waiters and its value was never "
                    "observed" % type(event).__name__, spans))
            self._unobserved.clear()
            self.hazards.sort(key=lambda h: (h.time, h.kind, h.message))
        return self.hazards

    def _now(self) -> float:
        return self.sim.now if self.sim is not None else 0.0

    def _context(self) -> Tuple[str, ...]:
        return tuple("%s/%s" % (span.category, span.name)
                     for span in self._open)

    def _report(self, kind: str, message: str,
                time: Optional[float] = None,
                spans: Optional[Tuple[str, ...]] = None) -> None:
        self.hazards.append(Hazard(
            kind, self._now() if time is None else time, message,
            self._context() if spans is None else spans))

    # -- span API (context only; nothing is persisted) ---------------------

    def begin(self, category: str, name: str,
              track: Tuple[str, str] = _DEFAULT_TRACK, **args) -> Span:
        span = Span(category, name, track, self._now(), args)
        self._open.append(span)
        return span

    def end(self, span: Span) -> None:
        span.end = self._now()
        for index in range(len(self._open) - 1, -1, -1):
            if self._open[index] is span:
                del self._open[index]
                break

    # -- kernel hooks ------------------------------------------------------

    def on_event_scheduled(self, sim, event, when: float,
                           priority: int) -> None:
        self._sched[id(event)] = (when, priority)

    def on_clock_advanced(self, sim, previous: float, now: float) -> None:
        self._cond_fires.clear()

    def on_event_fired(self, sim, event) -> None:
        key = self._sched.pop(id(event), None)
        callbacks = getattr(event, "callbacks", None)
        if callbacks is not None and key is not None:
            for callback in callbacks:
                cond = getattr(callback, "__self__", None)
                if cond is None or not _is_any_of(cond):
                    continue
                self._check_race(cond, key)
        if not callbacks and not _is_internal_event(event):
            # Fired with nobody listening; may still be observed later
            # through the already-processed path, so defer to finish().
            # on_event_fired runs before the clock moves to the entry's
            # time, so stamp with the entry's own `when`.
            when = key[0] if key is not None else self._now()
            self._unobserved[id(event)] = (event, when, self._context())

    def _check_race(self, cond, key: Tuple[float, int]) -> None:
        cid = id(cond)
        recorded = self._cond_fires.get(cid)
        if recorded is not None:
            if recorded[0] == key and cid not in self._reported_conds:
                self._reported_conds.add(cid)
                self._report(
                    ORDERING_RACE,
                    "any_of winner decided by scheduling order: two "
                    "sub-events fired at the same instant with identical "
                    "(when=%g, priority=%d); stagger them or model the "
                    "tie-break explicitly" % key, time=key[0])
        elif not cond.triggered:
            # Undecided as this first sub-event fires; remember it so a
            # same-key sibling at this instant exposes the race.  A
            # condition already decided in an earlier instant is not
            # racing.
            self._cond_fires[cid] = (key, cond)

    def on_event_observed(self, sim, event) -> None:
        self._unobserved.pop(id(event), None)

    def on_process_terminated(self, sim, process, ok: bool) -> None:
        held = self._held.pop(id(process), None)
        if held is None:
            return
        _proc, requests = held
        if requests:
            names = sorted(type(req.resource).__name__
                           for req in requests.values())
            self._report(
                RESOURCE_LEAK,
                "process %r terminated still holding %d granted slot(s) "
                "on %s; release in a finally block"
                % (process.name, len(requests), "/".join(names)))

    def on_resource_acquired(self, sim, resource, request) -> None:
        owner = getattr(request, "owner", None)
        if owner is None:
            return
        entry = self._held.get(id(owner))
        if entry is None:
            entry = (owner, {})
            self._held[id(owner)] = entry
        entry[1][id(request)] = request

    def on_resource_released(self, sim, resource, request) -> None:
        owner = getattr(request, "owner", None)
        if owner is None:
            return
        entry = self._held.get(id(owner))
        if entry is not None:
            entry[1].pop(id(request), None)

    # -- accumulator merge audit (installed into repro.simulation.monitor) -

    def _on_merge(self, target, part) -> None:
        seq = getattr(part, "_seq", None)
        if seq is None:
            return
        entry = self._merge_seq.get(id(target))
        if entry is not None and seq <= entry[1]:
            verb = "twice" if seq == entry[1] else "out of creation order"
            self._report(
                MERGE_ORDER,
                "accumulator %r merged %s into %r (part seq %d after "
                "seq %d); fold parts in task order exactly once"
                % (part.name or "<unnamed>", verb,
                   target.name or "<unnamed>", seq, entry[1]))
        if entry is None or seq > entry[1]:
            self._merge_seq[id(target)] = (target, seq)

    def __repr__(self) -> str:
        return "<DeterminismSanitizer hazards=%d>" % len(self.hazards)
