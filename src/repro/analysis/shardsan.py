"""Runtime shard-affinity checking — simsan's lockset-style sibling.

Where shardcheck (:mod:`repro.analysis.shard`) classifies *source*
locations on the affinity lattice, :class:`ShardAffinitySanitizer`
watches one concrete run and checks the same property dynamically: had
this world been partitioned into shards, would any interaction have
jumped a partition boundary without lookahead to hide it?

The sanitizer extends :class:`~repro.analysis.sanitizer.
DeterminismSanitizer` (all four determinism hazard classes stay armed)
with a partition model:

* :meth:`bind_grid` takes the host -> partition map from
  :meth:`~repro.core.grid.VirtualGrid.partitions` (``--shard-model
  site`` groups hosts by site; ``host`` is the finest split).
* Execution context is derived from the open tracer spans: the
  innermost span on a ``host:<name>`` track pins execution to that
  host's partition; spans on shared tracks (``sched``, ``net``,
  ``session:*``) leave it unowned (coordinator work).
* Every scheduled event is tagged with its *origin* partition and its
  scheduling delay.  When it fires in a *different* partition:

  - zero delay  -> ``shard-violation`` (a real :class:`~repro.analysis.
    sanitizer.Hazard`): the sharded engine would need the result in
    the same instant it was produced, so no lookahead can hide the
    crossing and the run is unshardable as modelled;
  - positive delay -> a ``shard-crossing`` record (informational, kept
    in :attr:`ShardAffinitySanitizer.crossings`): shardable, but the
    edge consumes lookahead equal to the delay — the runtime half of
    the ``docs/shard-safety.md`` inventory.

* Resources are owned by their first-toucher's partition; a later
  acquisition from a different partition is a crossing.
* Accumulator merges whose two sides live in different partitions are
  violations (parts must come home through the coordinator, not
  sideways).

Like its base class the sanitizer never mutates simulation state: a
run under it is byte-identical to a plain run (``repro sanitize
--shard-model`` verifies exactly that by replaying untraced).
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional, Tuple

from repro.analysis.sanitizer import (
    DeterminismSanitizer,
    Hazard,
    _is_internal_event,
)

__all__ = ["ShardAffinitySanitizer", "SHARD_VIOLATION", "SHARD_CROSSING"]

SHARD_VIOLATION = "shard-violation"
SHARD_CROSSING = "shard-crossing"

_HOST_TRACK_PREFIX = "host:"


class ShardAffinitySanitizer(DeterminismSanitizer):
    """simsan plus a dynamic shard-affinity (partition-escape) checker."""

    def __init__(self, shard_model: str = "site"):
        if shard_model not in ("site", "host"):
            raise ValueError("unknown shard model %r "
                             "(expected 'site' or 'host')" % shard_model)
        super().__init__()
        self.shard_model = shard_model
        #: Host name -> partition label; empty until :meth:`bind_grid`.
        self.host_partition: Dict[str, str] = {}
        #: Informational cross-partition records (positive-delay event
        #: deliveries, foreign resource acquisitions); never fail a run.
        self.crossings: List[Hazard] = []  # simlint: disable=R23  the sanitizer's product: one row per affinity violation found
        # id(event) -> (origin partition, scheduling delay).
        self._event_origin: Dict[int, Tuple[Optional[str], float]] = {}
        # id(resource) -> (resource, partition of first toucher).
        self._resource_owner: Dict[int, Tuple[Any, Optional[str]]] = {}  # simlint: disable=R23  first-writer ownership map; must span the whole run to catch late crossings
        # id(accumulator) -> partition observed at first merge contact.
        self._merge_home: Dict[int, Optional[str]] = {}

    # -- lifecycle ---------------------------------------------------------

    def bind_grid(self, grid) -> None:
        """Learn the host -> partition map from a built VirtualGrid.

        Called by :func:`repro.obs.runner.run_scenario` (duck-typed)
        once the topology exists; until then every context is unowned
        and the checker stays silent.
        """
        self.host_partition = grid.partitions(self.shard_model)

    def finish(self) -> List[Hazard]:
        hazards = super().finish()
        self.crossings.sort(key=lambda h: (h.time, h.kind, h.message))
        return hazards

    # -- partition context -------------------------------------------------

    def _partition(self) -> Optional[str]:
        """The partition owning the current execution context, if any."""
        for span in reversed(self._open):
            track = span.track[0] if span.track else ""
            if track.startswith(_HOST_TRACK_PREFIX):
                host = track[len(_HOST_TRACK_PREFIX):]
                return self.host_partition.get(host, host)
        return None

    def _cross(self, message: str, time: Optional[float] = None) -> None:
        self.crossings.append(Hazard(
            SHARD_CROSSING, self._now() if time is None else time,
            message, self._context()))

    # -- kernel hooks ------------------------------------------------------

    def on_event_scheduled(self, sim, event, when: float,
                           priority: int) -> None:
        super().on_event_scheduled(sim, event, when, priority)
        if _is_internal_event(event):
            return  # kernel plumbing (Initialize, process handles)
        origin = self._partition()
        if origin is not None:
            self._event_origin[id(event)] = (origin, when - sim.now)

    def on_event_fired(self, sim, event) -> None:
        origin = self._event_origin.pop(id(event), None)
        super().on_event_fired(sim, event)
        if origin is None:
            return
        here = self._partition()
        if here is None or here == origin[0]:
            return
        partition, delay = origin
        what = "%s scheduled in partition %r fired in partition %r" \
            % (type(event).__name__, partition, here)
        if delay <= 0.0:
            self._report(
                SHARD_VIOLATION,
                "%s with zero delay — no lookahead can hide this edge; "
                "deliver the result through a latency-mediated event "
                "or move both endpoints into one shard" % what)
        else:
            self._cross("%s after %.6fs of lookahead" % (what, delay))

    def on_resource_acquired(self, sim, resource, request) -> None:
        super().on_resource_acquired(sim, resource, request)
        here = self._partition()
        entry = self._resource_owner.get(id(resource))
        if entry is None:
            self._resource_owner[id(resource)] = (resource, here)
            return
        owner = entry[1]
        if owner is None and here is not None:
            # First partition-owned touch claims an unowned resource.
            self._resource_owner[id(resource)] = (resource, here)
        elif here is not None and here != owner:
            name = getattr(resource, "name", "") \
                or type(resource).__name__
            self._cross("resource %r first touched in partition %r "
                        "acquired from partition %r" % (name, owner,
                                                        here))

    # -- accumulator merge audit -------------------------------------------

    def _on_merge(self, target, part) -> None:
        super()._on_merge(target, part)
        here = self._partition()
        home = self._merge_home.setdefault(id(target), here)
        if here is not None and home is not None and here != home:
            name = getattr(target, "name", "") or type(target).__name__
            self._report(
                SHARD_VIOLATION,
                "accumulator %r homed in partition %r merged from "
                "partition %r — fold parts through the coordinator, "
                "never sideways between shards" % (name, home, here))

    def __repr__(self) -> str:
        return ("<ShardAffinitySanitizer model=%s hazards=%d "
                "crossings=%d>" % (self.shard_model, len(self.hazards),
                                   len(self.crossings)))
