"""Call-graph construction over a :class:`ProjectModel`.

For every call expression inside a project function the resolver finds
the :class:`~repro.analysis.dataflow.symbols.FunctionInfo` it names —
cross-module calls through import aliases, module-level calls by bare
name, constructor calls (resolved to ``__init__``), and ``self.m()``
method calls walked through project-known base classes.  Calls that
leave the project (stdlib, third-party) resolve to their expanded
dotted name instead, which is what the taint layer matches
nondeterminism sources against.

Resolution is deliberately syntactic: no types, no aliasing through
data structures.  That keeps it sound enough for lint purposes (a
resolved edge is a real possible edge) and fast enough to run on every
``make check``.
"""

from __future__ import annotations

import ast
from typing import Dict, Iterator, List, Optional, Set, Tuple

from repro.analysis.dataflow.symbols import (
    ClassInfo,
    FunctionInfo,
    ModuleInfo,
    ProjectModel,
)

__all__ = ["Resolution", "CallGraph", "resolve_call", "iter_calls",
           "own_nodes"]


class Resolution:
    """Outcome of resolving one call expression."""

    __slots__ = ("target", "external", "is_constructor")

    def __init__(self, target: Optional[FunctionInfo] = None,
                 external: Optional[str] = None,
                 is_constructor: bool = False):
        #: The project function called, when resolution succeeded.
        self.target = target
        #: The expanded dotted name for out-of-project calls
        #: (e.g. ``time.time``), or None.
        self.external = external
        self.is_constructor = is_constructor

    @property
    def resolved(self) -> bool:
        return self.target is not None

    def __repr__(self) -> str:
        if self.target is not None:
            return "<Resolution -> %s>" % self.target.qualname
        return "<Resolution external=%s>" % self.external


def _dotted(node: ast.AST) -> Optional[str]:
    parts: List[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
        return ".".join(reversed(parts))
    return None


def resolve_call(project: ProjectModel, caller: FunctionInfo,
                 call: ast.Call) -> Resolution:
    """Resolve ``call`` as written inside ``caller``."""
    func = call.func
    module = caller.module

    if isinstance(func, ast.Name):
        return _resolve_name(project, module, func.id)

    if isinstance(func, ast.Attribute):
        dotted = _dotted(func)
        if dotted is None:
            return Resolution()
        head, _, rest = dotted.partition(".")
        if head == "self" and caller.is_method and rest and "." not in rest:
            klass = module.classes.get(caller.class_name)
            if klass is not None:
                info = project.method(klass, rest)
                if info is not None:
                    return Resolution(target=info)
            return Resolution(external=dotted)
        expanded = project.expand(module, dotted)
        return _resolve_dotted(project, expanded)

    return Resolution()


def _resolve_name(project: ProjectModel, module: ModuleInfo,
                  name: str) -> Resolution:
    if name in module.functions:
        return Resolution(target=module.functions[name])
    if name in module.classes:
        return _constructor(project, module.classes[name])
    if name in module.imports:
        return _resolve_dotted(project, module.imports[name])
    return Resolution(external=name)


def _resolve_dotted(project: ProjectModel, dotted: str) -> Resolution:
    info = project.functions.get(dotted)
    if info is not None:
        return Resolution(target=info)
    klass = project.classes.get(dotted)
    if klass is not None:
        return _constructor(project, klass)
    # ``pkg.mod.Class.method`` spelled out explicitly.
    head, _, method = dotted.rpartition(".")
    klass = project.classes.get(head)
    if klass is not None and method:
        target = project.method(klass, method)
        if target is not None:
            return Resolution(target=target)
    return Resolution(external=dotted)


def _constructor(project: ProjectModel, klass: ClassInfo) -> Resolution:
    init = project.method(klass, "__init__")
    return Resolution(target=init, external=klass.qualname,
                      is_constructor=True)


def own_nodes(scope: ast.AST) -> Iterator[ast.AST]:
    """Walk a function body without descending into nested scopes."""
    todo: List[ast.AST] = list(ast.iter_child_nodes(scope))
    while todo:
        node = todo.pop()
        yield node
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef,
                             ast.Lambda, ast.ClassDef)):
            continue
        todo.extend(ast.iter_child_nodes(node))


def iter_calls(func: FunctionInfo) -> Iterator[ast.Call]:
    """Every call expression belonging to ``func``'s own body."""
    for node in own_nodes(func.node):
        if isinstance(node, ast.Call):
            yield node


class CallGraph:
    """The resolved caller -> callee relation for a whole project."""

    def __init__(self, project: ProjectModel):
        self.project = project
        #: caller qualname -> sorted list of callee qualnames.
        self.edges: Dict[str, List[str]] = {}
        #: caller qualname -> sorted list of external dotted names.
        self.external: Dict[str, List[str]] = {}
        for qualname in sorted(project.functions):
            caller = project.functions[qualname]
            targets: Set[str] = set()
            externals: Set[str] = set()
            for call in iter_calls(caller):
                res = resolve_call(project, caller, call)
                if res.target is not None:
                    targets.add(res.target.qualname)
                elif res.external is not None:
                    externals.add(res.external)
            self.edges[qualname] = sorted(targets)
            self.external[qualname] = sorted(externals)

    def callees(self, qualname: str) -> List[str]:
        return self.edges.get(qualname, [])

    def callers(self, qualname: str) -> List[str]:
        return sorted(caller for caller, callees in self.edges.items()
                      if qualname in callees)

    def edge_count(self) -> int:
        return sum(len(callees) for callees in self.edges.values())

    def cross_module_edges(self) -> List[Tuple[str, str]]:
        """Resolved edges whose endpoints live in different modules."""
        pairs = []
        for caller, callees in sorted(self.edges.items()):
            caller_mod = self.project.functions[caller].module.name
            for callee in callees:
                if self.project.functions[callee].module.name != caller_mod:
                    pairs.append((caller, callee))
        return pairs

    def __repr__(self) -> str:
        return "<CallGraph %d functions, %d edges>" % (
            len(self.edges), self.edge_count())
