"""The project symbol table: modules, functions, classes, imports.

simlint's per-file rules (R1–R10) see one module at a time.  The deep
rules (R11–R14) need to follow values across function and module
boundaries, which starts with knowing *what exists*: every module in
the analyzed tree, every function and method it defines, every class
and its bases, and what each imported name refers to.  This module
builds that table from source text alone — like the rest of the
analysis package it never imports the code it analyzes, so a broken
tree can still be analyzed.

Module names are derived structurally: a file's dotted name is its
path relative to the outermost ancestor directory that still contains
an ``__init__.py``.  That makes the table equally happy analyzing
``src/repro`` and a throwaway fixture package in a temp directory.
"""

from __future__ import annotations

import ast
import os
import tokenize
from typing import Dict, Iterable, List, Optional, Tuple

__all__ = ["FunctionInfo", "ClassInfo", "ModuleInfo", "ProjectModel",
           "module_name_for", "build_project"]


def module_name_for(path: str) -> str:
    """The dotted module name for ``path`` (see module docstring)."""
    path = os.path.abspath(path)
    directory, filename = os.path.split(path)
    stem = filename[:-3] if filename.endswith(".py") else filename
    parts: List[str] = [] if stem == "__init__" else [stem]
    while os.path.isfile(os.path.join(directory, "__init__.py")):
        directory, pkg = os.path.split(directory)
        parts.append(pkg)
    return ".".join(reversed(parts)) or stem


class FunctionInfo:
    """One function or method definition."""

    __slots__ = ("name", "qualname", "module", "node", "class_name",
                 "is_generator", "params")

    def __init__(self, name: str, module: "ModuleInfo",
                 node: ast.AST, class_name: Optional[str] = None):
        self.name = name
        self.module = module
        self.node = node
        self.class_name = class_name
        local = name if class_name is None else "%s.%s" % (class_name, name)
        #: Fully qualified: ``pkg.mod.func`` or ``pkg.mod.Class.method``.
        self.qualname = "%s.%s" % (module.name, local)
        self.is_generator = _has_own_yield(node)
        self.params = [arg.arg for arg in node.args.args]

    @property
    def is_method(self) -> bool:
        return self.class_name is not None

    def __repr__(self) -> str:
        return "<FunctionInfo %s>" % self.qualname


class ClassInfo:
    """One class definition and the dotted names of its bases."""

    __slots__ = ("name", "qualname", "module", "node", "bases")

    def __init__(self, name: str, module: "ModuleInfo", node: ast.ClassDef):
        self.name = name
        self.module = module
        self.node = node
        self.qualname = "%s.%s" % (module.name, name)
        self.bases: List[str] = []
        for base in node.bases:
            dotted = _dotted(base)
            if dotted:
                self.bases.append(dotted)

    def __repr__(self) -> str:
        return "<ClassInfo %s>" % self.qualname


class ModuleInfo:
    """One parsed module: tree, imports, functions, classes."""

    def __init__(self, name: str, path: str, source: str, tree: ast.Module):
        self.name = name
        self.path = path
        self.source = source
        self.tree = tree
        #: Local alias -> dotted target ("np" -> "numpy",
        #: "heappush" -> "heapq.heappush").
        self.imports: Dict[str, str] = {}
        #: Local qualname ("func" or "Class.method") -> FunctionInfo.
        self.functions: Dict[str, FunctionInfo] = {}
        self.classes: Dict[str, ClassInfo] = {}
        self._collect()

    # -- construction --------------------------------------------------------

    def _collect(self) -> None:
        for node in self.tree.body:
            self._collect_stmt(node)

    def _collect_stmt(self, node: ast.AST) -> None:
        if isinstance(node, ast.Import):
            for alias in node.names:
                local = alias.asname or alias.name.split(".")[0]
                target = alias.name if alias.asname else \
                    alias.name.split(".")[0]
                self.imports[local] = target
                if alias.asname is None and "." in alias.name:
                    # ``import a.b.c`` also makes the full dotted path
                    # usable as written.
                    self.imports[alias.name] = alias.name
        elif isinstance(node, ast.ImportFrom):
            base = self._resolve_from(node)
            for alias in node.names:
                if alias.name == "*":
                    continue
                local = alias.asname or alias.name
                self.imports[local] = "%s.%s" % (base, alias.name) \
                    if base else alias.name
        elif isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            info = FunctionInfo(node.name, self, node)
            self.functions[node.name] = info
        elif isinstance(node, ast.ClassDef):
            klass = ClassInfo(node.name, self, node)
            self.classes[node.name] = klass
            for child in node.body:
                if isinstance(child, (ast.FunctionDef,
                                      ast.AsyncFunctionDef)):
                    info = FunctionInfo(child.name, self, child,
                                        class_name=node.name)
                    self.functions["%s.%s" % (node.name, child.name)] = info
        elif isinstance(node, (ast.If, ast.Try)):
            # TYPE_CHECKING guards and optional-dependency try/except
            # still contribute imports and definitions.
            for child in ast.iter_child_nodes(node):
                if isinstance(child, ast.stmt):
                    self._collect_stmt(child)

    def _resolve_from(self, node: ast.ImportFrom) -> str:
        if not node.level:
            return node.module or ""
        # Relative import: resolve against this module's package.
        parts = self.name.split(".")
        if self.path.endswith("__init__.py"):
            package = parts
        else:
            package = parts[:-1]
        package = package[:len(package) - (node.level - 1)]
        if node.module:
            package = package + node.module.split(".")
        return ".".join(package)

    def __repr__(self) -> str:
        return "<ModuleInfo %s (%d functions)>" % (
            self.name, len(self.functions))


class ProjectModel:
    """Every analyzed module, with whole-project lookups."""

    def __init__(self) -> None:
        self.modules: Dict[str, ModuleInfo] = {}
        #: Fully qualified name -> FunctionInfo, for every function.
        self.functions: Dict[str, FunctionInfo] = {}
        self.classes: Dict[str, ClassInfo] = {}
        #: Modules that failed to parse: path -> (lineno, message).
        self.parse_errors: Dict[str, Tuple[int, str]] = {}

    def add_module(self, module: ModuleInfo) -> None:
        self.modules[module.name] = module
        for info in module.functions.values():
            self.functions[info.qualname] = info
        for klass in module.classes.values():
            self.classes[klass.qualname] = klass

    def add_source(self, source: str, path: str) -> Optional[ModuleInfo]:
        """Parse and add one module; records (not raises) parse errors."""
        try:
            tree = ast.parse(source, filename=path)
        except SyntaxError as exc:
            self.parse_errors[path] = (exc.lineno or 1, exc.msg or "")
            return None
        module = ModuleInfo(module_name_for(path), path, source, tree)
        self.add_module(module)
        return module

    # -- lookups -------------------------------------------------------------

    def expand(self, module: ModuleInfo, dotted: str) -> str:
        """Resolve a name as written in ``module`` to a project-wide
        dotted name, following import aliases by longest prefix."""
        parts = dotted.split(".")
        for cut in range(len(parts), 0, -1):
            prefix = ".".join(parts[:cut])
            if prefix in module.imports:
                rest = parts[cut:]
                return ".".join([module.imports[prefix]] + rest)
        return dotted

    def function(self, qualname: str) -> Optional[FunctionInfo]:
        return self.functions.get(qualname)

    def method(self, klass: ClassInfo,
               name: str) -> Optional[FunctionInfo]:
        """Look up ``name`` on ``klass``, walking project-known bases."""
        seen = set()
        todo = [klass]
        while todo:
            current = todo.pop(0)
            if current.qualname in seen:
                continue
            seen.add(current.qualname)
            info = current.module.functions.get(
                "%s.%s" % (current.name, name))
            if info is not None:
                return info
            for base in current.bases:
                resolved = self.expand(current.module, base)
                base_class = self.classes.get(resolved)
                if base_class is None:
                    # A bare base name defined in the same module.
                    base_class = current.module.classes.get(base)
                if base_class is not None:
                    todo.append(base_class)
        return None

    def __repr__(self) -> str:
        return "<ProjectModel %d modules, %d functions>" % (
            len(self.modules), len(self.functions))


def build_project(paths: Iterable[str]) -> ProjectModel:
    """Parse every ``.py`` file under ``paths`` into a ProjectModel."""
    project = ProjectModel()
    for path in paths:
        if os.path.isdir(path):
            for directory, dirnames, filenames in os.walk(path):
                dirnames.sort()
                for filename in sorted(filenames):
                    if filename.endswith(".py"):
                        full = os.path.join(directory, filename)
                        project.add_source(_read(full), full)
        else:
            project.add_source(_read(path), path)
    return project


def _read(path: str) -> str:
    with tokenize.open(path) as handle:
        return handle.read()


def _dotted(node: ast.AST) -> Optional[str]:
    parts: List[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
        return ".".join(reversed(parts))
    return None


def _has_own_yield(func: ast.AST) -> bool:
    """Does ``func`` yield, not counting nested function bodies?"""
    todo: List[ast.AST] = list(ast.iter_child_nodes(func))
    while todo:
        node = todo.pop()
        if isinstance(node, (ast.Yield, ast.YieldFrom)):
            return True
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef,
                             ast.Lambda)):
            continue
        todo.extend(ast.iter_child_nodes(node))
    return False
