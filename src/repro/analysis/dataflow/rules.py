"""The interprocedural rules R11–R14, powered by the taint engine.

Unlike the per-file rules in :mod:`repro.analysis.rules`, a
:class:`DeepRule` sees the whole project at once — the symbol table,
the call graph and the taint fixpoint — so it can flag flows the
single-file pass structurally cannot:

* **R11** ``tainted-sim-state`` — a wall-clock / entropy /
  worker-identity value reaches simulation state (an event delay or
  value, a spawn, an RNG seed, a heap key), possibly through any number
  of function and module boundaries.
* **R12** ``rng-stream-escape`` — a ``sim.streams`` child is re-seeded,
  or handed to code that re-seeds it or forks a new generator from its
  draws; either way the stream's future draws stop being a pure
  function of the root seed.
* **R13** ``helper-event-discarded`` — a call to a *helper* that
  (transitively) returns an :class:`Event` is used as a bare statement,
  so the event is lost; the call-graph-aware sibling of R4.
* **R14** ``unordered-key-taint`` — a value whose *order* is hash- or
  filesystem-dependent flows into a scheduling key or into trace /
  metric output, making timelines and metrics differ run to run.

Deep rules register with :func:`register_deep`; :func:`deep_rules`
returns fresh instances in code order, mirroring the per-file registry.
"""

from __future__ import annotations

from typing import Dict, Iterator, List, Type

from repro.analysis.core import Finding
from repro.analysis.dataflow.taint import (
    ENTROPY,
    UNORDERED,
    WALLCLOCK,
    WORKER,
    CallSite,
    TaintEngine,
)

__all__ = ["DeepRule", "register_deep", "deep_rules",
           "registered_deep_rule_classes", "TaintedSimStateRule",
           "RngStreamEscapeRule", "HelperEventDiscardedRule",
           "UnorderedKeyTaintRule"]

#: Populated only by the ``register_deep`` decorations at import time,
#: read-only afterwards — identical in every process, so it cannot
#: couple shards.
_DEEP_REGISTRY: List[Type["DeepRule"]] = []  # simlint: disable=R15  import-time registry, read-only after import


def register_deep(rule_class: Type["DeepRule"]) -> Type["DeepRule"]:
    """Class decorator: add a DeepRule subclass to the deep rule set."""
    if not (isinstance(rule_class, type)
            and issubclass(rule_class, DeepRule)):
        raise TypeError("register_deep() expects a DeepRule subclass, "
                        "got %r" % (rule_class,))
    if any(existing.code == rule_class.code
           for existing in _DEEP_REGISTRY):
        raise ValueError("duplicate deep rule code %s" % rule_class.code)
    _DEEP_REGISTRY.append(rule_class)
    return rule_class


def registered_deep_rule_classes() -> List[Type["DeepRule"]]:
    """The registered classes, sorted by code (R12 before R13)."""
    return sorted(_DEEP_REGISTRY,
                  key=lambda cls: (len(cls.code), cls.code))


def deep_rules() -> List["DeepRule"]:
    """Fresh instances of every registered deep rule."""
    return [cls() for cls in registered_deep_rule_classes()]


class DeepRule:
    """Base class for whole-program rules.

    Subclasses set ``code``/``name`` and implement :meth:`check_project`,
    yielding :class:`~repro.analysis.core.Finding` objects.  Findings
    use the same shape, sorting, and suppression machinery as the
    per-file rules, so one CLI renders both.
    """

    code: str = "R0"
    name: str = "abstract-deep-rule"

    def check_project(self,
                      engine: TaintEngine) -> Iterator[Finding]:
        """Yield findings over the analyzed project."""
        return iter(())  # pragma: no cover

    def finding(self, site: CallSite, message: str) -> Finding:
        node = site.node
        return Finding(site.caller.module.path, node.lineno,
                       node.col_offset + 1, self.code, self.name, message)

    def __repr__(self) -> str:
        return "<DeepRule %s %s>" % (self.code, self.name)


def _callee_label(site: CallSite) -> str:
    if site.func_attr is not None:
        return site.func_attr
    res = site.resolution
    if res.target is not None:
        return res.target.name
    return (res.external or "call").rsplit(".", 1)[-1]


#: Sinks that feed simulation state: event creation/values, process
#: spawns, RNG seeding, heap keys.
_SIM_STATE_SINKS = frozenset({"timeout", "succeed", "fail", "spawn",
                              "process", "seed", "heappush"})

#: Constructors whose argument becomes an RNG seed.
_SEEDING_CALLS = frozenset({"random.Random", "numpy.random.default_rng",
                            "repro.simulation.randomness.RandomStreams",
                            "heapq.heappush"})


def _is_sink(site: CallSite, names: frozenset) -> bool:
    if site.func_attr in names:
        return True
    res = site.resolution
    external = res.external or ""
    if external in _SEEDING_CALLS:
        return True
    return bool(res.is_constructor and external
                and external.rsplit(".", 1)[-1]
                in ("Random", "RandomStreams"))


@register_deep
class TaintedSimStateRule(DeepRule):
    """R11: host nondeterminism flowing into sim state (cross-function)."""

    code = "R11"
    name = "tainted-sim-state"

    _KINDS = {WALLCLOCK, ENTROPY, WORKER}

    def check_project(self, engine: TaintEngine) -> Iterator[Finding]:
        for qualname in sorted(engine.call_sites):
            for site in engine.call_sites[qualname]:
                if not _is_sink(site, _SIM_STATE_SINKS):
                    continue
                for arg, kinds in site.tainted_args(self._KINDS):
                    yield self.finding(
                        site,
                        "argument %s of %s() carries %s taint — sim "
                        "state must be a pure function of the seed; "
                        "derive the value from sim.now or sim.streams"
                        % (arg.label, _callee_label(site),
                           "/".join(sorted(kinds))))


@register_deep
class RngStreamEscapeRule(DeepRule):
    """R12: a named RNG stream re-seeded or forked non-derivably."""

    code = "R12"
    name = "rng-stream-escape"

    def check_project(self, engine: TaintEngine) -> Iterator[Finding]:
        for qualname in sorted(engine.call_sites):
            for site in engine.call_sites[qualname]:
                yield from self._check_site(engine, site)

    def _check_site(self, engine: TaintEngine,
                    site: CallSite) -> Iterator[Finding]:
        # Direct re-seed of a stream value in hand.
        if site.func_attr == "seed" and site.receiver_is_stream:
            yield self.finding(
                site,
                "re-seeding a sim.streams stream discards its "
                "derivation from the root seed and correlates it with "
                "other consumers; request a fresh named stream instead")
            return
        # A stream handed to a function that re-seeds/forks the
        # corresponding parameter.
        res = site.resolution
        if res.target is not None:
            callee = engine.summary(res.target.qualname)
            if callee is not None and callee.reseed_params:
                params = callee.info.params
                offset = 1 if params and params[0] in ("self", "cls") \
                    else 0
                for index, arg in enumerate(site.node.args):
                    slot = index + offset
                    if slot >= len(params) or \
                            params[slot] not in callee.reseed_params:
                        continue
                    info = site.args[index] if index < len(site.args) \
                        else None
                    if info is not None and info.is_stream:
                        yield self.finding(
                            site,
                            "RNG stream escapes to %s(), which re-seeds "
                            "or forks parameter '%s'; streams must stay "
                            "derivable from the root seed"
                            % (res.target.name, params[slot]))
        # A new generator forked from a stream's draws at this site.
        if _is_fork_site(site):
            for arg in site.args:
                if arg.draws_stream:
                    yield self.finding(
                        site,
                        "new generator seeded from a stream's draws: "
                        "the child depends on the stream's consumption "
                        "position, not the root seed; use "
                        "streams.child()/spawn_key() instead")


_FORK_CALLS = frozenset({"random.Random", "numpy.random.default_rng",
                         "repro.simulation.randomness.RandomStreams"})


def _is_fork_site(site: CallSite) -> bool:
    res = site.resolution
    external = res.external or ""
    if external in _FORK_CALLS:
        return True
    return bool(res.is_constructor and external
                and external.rsplit(".", 1)[-1]
                in ("Random", "RandomStreams"))


@register_deep
class HelperEventDiscardedRule(DeepRule):
    """R13: discarding the Event returned (transitively) by a helper."""

    code = "R13"
    name = "helper-event-discarded"

    def check_project(self, engine: TaintEngine) -> Iterator[Finding]:
        for qualname in sorted(engine.call_sites):
            for site in engine.call_sites[qualname]:
                if not site.is_bare_stmt:
                    continue
                res = site.resolution
                if res.target is None or res.is_constructor:
                    continue
                callee = engine.summary(res.target.qualname)
                if callee is None or not callee.returns_event or \
                        callee.info.is_generator:
                    continue
                yield self.finding(
                    site,
                    "%s() returns an Event (via its call graph) but the "
                    "result is discarded — the event is lost; yield it "
                    "or store it" % res.target.name)


#: Sinks where iteration order becomes observable: scheduling keys and
#: trace/metric output.
_ORDER_SINKS = frozenset({"timeout", "succeed", "fail", "spawn",
                          "process", "seed", "heappush", "instant",
                          "begin", "counter", "gauge", "histogram"})


@register_deep
class UnorderedKeyTaintRule(DeepRule):
    """R14: hash/filesystem iteration order reaching keys or output."""

    code = "R14"
    name = "unordered-key-taint"

    def check_project(self, engine: TaintEngine) -> Iterator[Finding]:
        for qualname in sorted(engine.call_sites):
            for site in engine.call_sites[qualname]:
                if not _is_sink(site, _ORDER_SINKS):
                    continue
                for arg, _kinds in site.tainted_args({UNORDERED}):
                    yield self.finding(
                        site,
                        "argument %s of %s() derives from unordered "
                        "iteration (set / directory listing): scheduling "
                        "keys and trace/metric output must not depend "
                        "on hash or filesystem order; sort first"
                        % (arg.label, _callee_label(site)))
