"""Interprocedural taint analysis over nondeterminism sources.

The lattice is a set of *taint kinds* per value:

* ``wall-clock`` — host-clock reads (``time.time``, ``datetime.now``);
* ``entropy`` — OS randomness (``os.urandom``, ``uuid.uuid4``,
  ``random.SystemRandom`` draws);
* ``worker-identity`` — pool/host identity (``os.cpu_count``,
  ``os.getpid``, ``socket.gethostname``);
* ``unordered-iteration`` — values whose *order* is hash- or
  filesystem-dependent (iterating a ``set``, ``os.listdir`` results).

The engine computes one summary per project function — taint entering
each parameter, taint of the return value, whether the function
returns an RNG stream or an :class:`Event`, and which parameters it
re-seeds or forks — and iterates caller→callee taint pushes to a
global fixpoint.  The analysis is flow-insensitive and
context-insensitive: a parameter tainted by *any* caller is tainted
for *all* callers.  That over-approximates, which is the right
direction for a determinism lint — a clean bill of health must mean
something.

``sorted()``, ``min``, ``max``, ``sum`` and ``len`` launder the
``unordered-iteration`` kind (they impose or erase order), which is
exactly the sanctioned fix simlint's R3 recommends.
"""

from __future__ import annotations

import ast
from typing import Dict, Iterator, List, Optional, Set, Tuple

from repro.analysis.dataflow.callgraph import (
    Resolution,
    own_nodes,
    resolve_call,
)
from repro.analysis.dataflow.symbols import FunctionInfo, ProjectModel

__all__ = ["WALLCLOCK", "ENTROPY", "WORKER", "UNORDERED",
           "FunctionSummary", "ArgInfo", "CallSite", "TaintEngine"]

WALLCLOCK = "wall-clock"
ENTROPY = "entropy"
WORKER = "worker-identity"
UNORDERED = "unordered-iteration"

#: External callables that *produce* taint, by expanded dotted name.
#: Filled by the loops below at import time, read-only afterwards —
#: identical in every process, so it cannot couple shards.
SOURCES: Dict[str, str] = {}  # simlint: disable=R15  built at import time, read-only after import
for _name in ("time.time", "time.time_ns", "time.monotonic",
              "time.monotonic_ns", "time.perf_counter",
              "time.perf_counter_ns", "time.process_time",
              "time.process_time_ns", "time.clock_gettime",
              "datetime.datetime.now", "datetime.datetime.utcnow",
              "datetime.datetime.today", "datetime.date.today"):
    SOURCES[_name] = WALLCLOCK
for _name in ("os.urandom", "os.getrandom", "uuid.uuid1", "uuid.uuid4",
              "secrets.token_bytes", "secrets.token_hex",
              "secrets.token_urlsafe", "secrets.randbits",
              "secrets.randbelow", "secrets.choice",
              "random.SystemRandom"):
    SOURCES[_name] = ENTROPY
for _name in ("os.cpu_count", "os.getpid", "os.getppid",
              "os.sched_getaffinity", "multiprocessing.cpu_count",
              "multiprocessing.current_process", "threading.get_ident",
              "threading.get_native_id", "socket.gethostname",
              "platform.node"):
    SOURCES[_name] = WORKER
for _name in ("os.listdir", "os.scandir", "os.walk", "glob.glob",
              "glob.iglob"):
    SOURCES[_name] = UNORDERED

#: Builtins that erase the unordered-iteration kind: they either
#: impose a total order or reduce order-insensitively.
_ORDER_LAUNDERERS = frozenset({"sorted", "min", "max", "sum", "len"})

#: Methods whose result is an RNG stream (``RandomStreams`` API).
_STREAM_METHODS = frozenset({"stream", "numpy_stream"})

#: Event-returning factory methods on a Simulation/Resource.
_EVENT_METHODS = frozenset({"timeout", "event", "all_of", "any_of",
                            "request"})
#: Event classes by bare name (kernel + resources).
_EVENT_CLASSES = frozenset({"Event", "Timeout", "Condition", "Request"})

#: Constructors that fork a generator; called with stream draws they
#: create a non-derivable child (R12).
_FORK_CONSTRUCTORS = frozenset({
    "random.Random", "numpy.random.default_rng",
    "repro.simulation.randomness.RandomStreams",
})


class FunctionSummary:
    """Interprocedural facts about one function, grown to fixpoint."""

    __slots__ = ("info", "param_taint", "stream_params", "setlike_params",
                 "returns_taint", "returns_stream", "returns_event",
                 "reseed_params")

    def __init__(self, info: FunctionInfo):
        self.info = info
        #: Parameter name -> kinds pushed in by any caller.
        self.param_taint: Dict[str, Set[str]] = {}
        #: Parameter names known to receive an RNG stream.
        self.stream_params: Set[str] = set()
        #: Parameter names known to receive a set (unordered iteration).
        self.setlike_params: Set[str] = set()
        self.returns_taint: Set[str] = set()
        self.returns_stream = False
        self.returns_event = False
        #: Parameter names the body re-seeds or forks non-derivably.
        self.reseed_params: Set[str] = set()

    def __repr__(self) -> str:
        return "<FunctionSummary %s returns=%s>" % (
            self.info.qualname, sorted(self.returns_taint))


class ArgInfo:
    """One call argument with its analysis facts."""

    __slots__ = ("label", "node", "taint", "is_stream", "draws_stream")

    def __init__(self, label: str, node: ast.AST, taint: Set[str],
                 is_stream: bool, draws_stream: bool):
        #: ``"1"``-based position or the keyword name.
        self.label = label
        self.node = node
        self.taint = taint
        self.is_stream = is_stream
        #: The expression consumes draws from a stream
        #: (e.g. ``rng.random()``) — the R12 fork signature.
        self.draws_stream = draws_stream


class CallSite:
    """One resolved call with per-argument taint, for the deep rules."""

    __slots__ = ("node", "caller", "resolution", "func_attr",
                 "receiver_taint", "receiver_is_stream", "args",
                 "is_bare_stmt")

    def __init__(self, node: ast.Call, caller: FunctionInfo,
                 resolution: Resolution, func_attr: Optional[str],
                 receiver_taint: Set[str], receiver_is_stream: bool,
                 args: List[ArgInfo], is_bare_stmt: bool):
        self.node = node
        self.caller = caller
        self.resolution = resolution
        #: Final attribute for method-style calls (``x.timeout`` -> "timeout").
        self.func_attr = func_attr
        self.receiver_taint = receiver_taint
        self.receiver_is_stream = receiver_is_stream
        self.args = args
        self.is_bare_stmt = is_bare_stmt

    def tainted_args(self, kinds: Set[str]) -> List[Tuple["ArgInfo",
                                                          Set[str]]]:
        """Arguments carrying any of ``kinds``, with the overlap."""
        hits = []
        for arg in self.args:
            overlap = arg.taint & kinds
            if overlap:
                hits.append((arg, overlap))
        return hits


class _FnState:
    """Per-function mutable environment during one local pass."""

    __slots__ = ("env", "streams", "setlike", "events")

    def __init__(self) -> None:
        self.env: Dict[str, Set[str]] = {}
        self.streams: Set[str] = set()
        self.setlike: Set[str] = set()
        #: Local names currently holding an Event.
        self.events: Set[str] = set()


class TaintEngine:
    """Builds summaries and call sites for a project (see module doc)."""

    #: Safety bound on global fixpoint rounds; real projects converge
    #: in a handful because the lattice is four bits per value.
    MAX_ROUNDS = 30

    def __init__(self, project: ProjectModel):
        self.project = project
        self.summaries: Dict[str, FunctionSummary] = {
            q: FunctionSummary(info)
            for q, info in project.functions.items()}
        #: (class qualname, attr) -> taint kinds, across all methods.
        self.attr_taint: Dict[Tuple[str, str], Set[str]] = {}
        self.attr_stream: Set[Tuple[str, str]] = set()
        self.attr_setlike: Set[Tuple[str, str]] = set()
        self._resolutions: Dict[int, Resolution] = {}
        self._changed = False
        #: caller qualname -> call sites, built by :meth:`run`.
        self.call_sites: Dict[str, List[CallSite]] = {}
        self._seed_reseeds()

    # -- public --------------------------------------------------------------

    def run(self) -> "TaintEngine":
        """Iterate to fixpoint, then freeze per-call-site facts."""
        order = sorted(self.summaries)
        for _round in range(self.MAX_ROUNDS):
            self._changed = False
            for qualname in order:
                self._analyze_function(self.summaries[qualname])
            if not self._changed:
                break
        for qualname in order:
            self.call_sites[qualname] = self._build_call_sites(
                self.summaries[qualname])
        return self

    def summary(self, qualname: str) -> Optional[FunctionSummary]:
        return self.summaries.get(qualname)

    # -- resolution cache ----------------------------------------------------

    def _resolve(self, caller: FunctionInfo, call: ast.Call) -> Resolution:
        key = id(call)
        if key not in self._resolutions:
            self._resolutions[key] = resolve_call(self.project, caller,
                                                  call)
        return self._resolutions[key]

    # -- seeding -------------------------------------------------------------

    def _seed_reseeds(self) -> None:
        """Mark parameters whose own body re-seeds/forks them.

        Purely syntactic (no taint needed): ``p.seed(...)`` or a fork
        constructor consuming ``p``'s draws, with ``p`` a parameter.
        The transitive closure (a function handing its stream param to
        a reseeder) is added during the fixpoint.
        """
        for summary in self.summaries.values():
            params = set(summary.info.params)
            for node in own_nodes(summary.info.node):
                if not isinstance(node, ast.Call):
                    continue
                func = node.func
                if (isinstance(func, ast.Attribute) and func.attr == "seed"
                        and isinstance(func.value, ast.Name)
                        and func.value.id in params):
                    summary.reseed_params.add(func.value.id)
                elif self._is_fork_constructor(summary.info, node):
                    for arg in list(node.args) + [kw.value
                                                  for kw in node.keywords]:
                        for name in _drawn_names(arg):
                            if name in params:
                                summary.reseed_params.add(name)

    def _is_fork_constructor(self, caller: FunctionInfo,
                             call: ast.Call) -> bool:
        res = self._resolve(caller, call)
        name = res.external or (res.target.qualname if res.target else "")
        if name in _FORK_CONSTRUCTORS:
            return True
        return bool(res.is_constructor and res.external
                    and res.external.rsplit(".", 1)[-1]
                    in ("Random", "RandomStreams"))

    # -- local analysis ------------------------------------------------------

    def _analyze_function(self, summary: FunctionSummary) -> None:
        info = summary.info
        state = _FnState()
        for param in info.params:
            state.env[param] = set(summary.param_taint.get(param, ()))
        state.streams |= summary.stream_params
        state.setlike |= summary.setlike_params
        # Flow-insensitive local fixpoint: a couple of passes settle
        # chains like ``a = src(); b = a; return b``.
        for _pass in range(8):
            before = (dict((k, frozenset(v))
                           for k, v in state.env.items()),
                      frozenset(state.streams), frozenset(state.setlike))
            self._walk_body(summary, state)
            after = (dict((k, frozenset(v)) for k, v in state.env.items()),
                     frozenset(state.streams), frozenset(state.setlike))
            if before == after:
                break

    def _walk_body(self, summary: FunctionSummary, state: _FnState) -> None:
        info = summary.info
        for node in own_nodes(info.node):
            if isinstance(node, ast.Assign):
                self._assign(summary, state, node.targets, node.value)
            elif isinstance(node, ast.AnnAssign) and node.value is not None:
                self._assign(summary, state, [node.target], node.value)
            elif isinstance(node, ast.AugAssign):
                taint = self._taint_of(node.value, summary, state)
                if isinstance(node.target, ast.Name):
                    state.env.setdefault(node.target.id, set()).update(taint)
                elif _is_self_attr(node.target, info):
                    self._taint_attr(info, node.target.attr, taint)
            elif isinstance(node, (ast.For, ast.AsyncFor)):
                taint = self._iteration_taint(node.iter, summary, state)
                for name in _target_names(node.target):
                    state.env.setdefault(name, set()).update(taint)
            elif isinstance(node, ast.withitem):
                if node.optional_vars is not None:
                    taint = self._taint_of(node.context_expr, summary,
                                           state)
                    for name in _target_names(node.optional_vars):
                        state.env.setdefault(name, set()).update(taint)
            elif isinstance(node, ast.Return) and node.value is not None:
                self._note_return(summary, state, node.value)
            elif isinstance(node, ast.Call):
                self._push_args(summary, state, node)

    def _assign(self, summary: FunctionSummary, state: _FnState,
                targets: List[ast.AST], value: ast.AST) -> None:
        info = summary.info
        taint = self._taint_of(value, summary, state)
        streamy = self._is_stream(value, summary, state)
        setty = self._is_setlike(value, state)
        eventy = self._is_event(value, summary, state)
        for target in targets:
            for name in _target_names(target):
                state.env.setdefault(name, set()).update(taint)
                if streamy:
                    state.streams.add(name)
                if setty:
                    state.setlike.add(name)
                if eventy:
                    state.events.add(name)
            if _is_self_attr(target, info):
                self._taint_attr(info, target.attr, taint)
                key = (self._class_qualname(info), target.attr)
                if streamy and key not in self.attr_stream:
                    self.attr_stream.add(key)
                    self._changed = True
                if setty and key not in self.attr_setlike:
                    self.attr_setlike.add(key)
                    self._changed = True

    def _note_return(self, summary: FunctionSummary, state: _FnState,
                     value: ast.AST) -> None:
        taint = self._taint_of(value, summary, state)
        if not taint <= summary.returns_taint:
            summary.returns_taint |= taint
            self._changed = True
        if not summary.returns_stream and \
                self._is_stream(value, summary, state):
            summary.returns_stream = True
            self._changed = True
        if not summary.returns_event and \
                self._is_event(value, summary, state):
            summary.returns_event = True
            self._changed = True

    def _is_event(self, value: ast.AST, summary: FunctionSummary,
                  state: _FnState) -> bool:
        if isinstance(value, ast.Name):
            return value.id in state.events
        if not isinstance(value, ast.Call):
            return False
        func = value.func
        if isinstance(func, ast.Attribute) and func.attr in _EVENT_METHODS:
            return True
        if isinstance(func, ast.Name) and func.id in _EVENT_CLASSES:
            return True
        res = self._resolve(summary.info, value)
        if res.is_constructor and res.external and \
                self._class_is_event(res.external):
            return True
        if res.target is not None and not res.is_constructor:
            callee = self.summaries.get(res.target.qualname)
            return bool(callee and callee.returns_event
                        and not callee.info.is_generator)
        return False

    def _class_is_event(self, qualname: str) -> bool:
        """Is the class an Event subclass, walking project-known bases?"""
        seen: Set[str] = set()
        todo = [qualname]
        while todo:
            current = todo.pop()
            if current in seen:
                continue
            seen.add(current)
            if current.rsplit(".", 1)[-1] in _EVENT_CLASSES:
                return True
            klass = self.project.classes.get(current)
            if klass is None:
                continue
            for base in klass.bases:
                if base.rsplit(".", 1)[-1] in _EVENT_CLASSES:
                    return True
                todo.append(self.project.expand(klass.module, base))
        return False

    # -- interprocedural pushes ----------------------------------------------

    def _push_args(self, summary: FunctionSummary, state: _FnState,
                   call: ast.Call) -> None:
        res = self._resolve(summary.info, call)
        if res.target is None:
            return
        callee = self.summaries[res.target.qualname]
        params = callee.info.params
        offset = 1 if params and params[0] in ("self", "cls") else 0
        pairs: List[Tuple[str, ast.AST]] = []
        for index, arg in enumerate(call.args):
            if isinstance(arg, ast.Starred):
                continue
            slot = index + offset
            if slot < len(params):
                pairs.append((params[slot], arg))
        for keyword in call.keywords:
            if keyword.arg is not None and keyword.arg in params:
                pairs.append((keyword.arg, keyword.value))
        for param, arg in pairs:
            taint = self._taint_of(arg, summary, state)
            bucket = callee.param_taint.setdefault(param, set())
            if not taint <= bucket:
                bucket |= taint
                self._changed = True
            if self._is_setlike(arg, state) and \
                    param not in callee.setlike_params:
                callee.setlike_params.add(param)
                self._changed = True
            if self._is_stream(arg, summary, state):
                if param not in callee.stream_params:
                    callee.stream_params.add(param)
                    self._changed = True
                # Transitive re-seed: our stream param handed straight
                # to a parameter the callee re-seeds.
                if (param in callee.reseed_params
                        and isinstance(arg, ast.Name)
                        and arg.id in summary.info.params
                        and arg.id not in summary.reseed_params):
                    summary.reseed_params.add(arg.id)
                    self._changed = True

    # -- expression queries --------------------------------------------------

    def _taint_of(self, expr: ast.AST, summary: FunctionSummary,
                  state: _FnState) -> Set[str]:
        info = summary.info
        if isinstance(expr, ast.Name):
            return set(state.env.get(expr.id, ()))
        if isinstance(expr, ast.Attribute):
            if _is_self_attr(expr, info):
                key = (self._class_qualname(info), expr.attr)
                return set(self.attr_taint.get(key, ()))
            return self._taint_of(expr.value, summary, state)
        if isinstance(expr, ast.Call):
            return self._call_taint(expr, summary, state)
        if isinstance(expr, (ast.BinOp, ast.BoolOp, ast.Compare,
                             ast.UnaryOp, ast.IfExp, ast.JoinedStr,
                             ast.FormattedValue, ast.Tuple, ast.List,
                             ast.Set, ast.Dict, ast.Starred,
                             ast.Subscript, ast.Slice, ast.Await)):
            taint: Set[str] = set()
            for child in ast.iter_child_nodes(expr):
                taint |= self._taint_of(child, summary, state)
            return taint
        if isinstance(expr, (ast.ListComp, ast.SetComp, ast.DictComp,
                             ast.GeneratorExp)):
            taint = set()
            for generator in expr.generators:
                taint |= self._iteration_taint(generator.iter, summary,
                                               state)
            for child in ast.iter_child_nodes(expr):
                if not isinstance(child, ast.comprehension):
                    taint |= self._taint_of(child, summary, state)
            return taint
        return set()

    def _call_taint(self, call: ast.Call, summary: FunctionSummary,
                    state: _FnState) -> Set[str]:
        func = call.func
        res = self._resolve(summary.info, call)
        name = res.external or ""
        if name in SOURCES:
            return {SOURCES[name]}
        taint: Set[str] = set()
        if res.target is not None:
            taint |= self.summaries[res.target.qualname].returns_taint
        else:
            # Unresolved call: conservatively pass arguments through.
            for arg in call.args:
                taint |= self._taint_of(arg, summary, state)
            for keyword in call.keywords:
                taint |= self._taint_of(keyword.value, summary, state)
            if isinstance(func, ast.Name) and \
                    func.id in _ORDER_LAUNDERERS:
                taint.discard(UNORDERED)
        if isinstance(func, ast.Attribute):
            if func.attr in _STREAM_METHODS:
                # Draws from a named stream are the *sanctioned*
                # randomness: deterministic per seed, never tainted.
                return set()
            # A method call on a tainted object yields tainted values
            # (e.g. SystemRandom().random()).
            taint |= self._taint_of(func.value, summary, state)
        return taint

    def _iteration_taint(self, iterable: ast.AST,
                         summary: FunctionSummary,
                         state: _FnState) -> Set[str]:
        taint = self._taint_of(iterable, summary, state)
        if self._is_setlike(_unwrap_order_preserving(iterable), state):
            taint = taint | {UNORDERED}
        return taint

    def _is_setlike(self, expr: ast.AST, state: _FnState) -> bool:
        expr = _unwrap_order_preserving(expr)
        if isinstance(expr, (ast.Set, ast.SetComp)):
            return True
        if isinstance(expr, ast.Call) and isinstance(expr.func, ast.Name) \
                and expr.func.id in ("set", "frozenset"):
            return True
        if isinstance(expr, ast.Name):
            return expr.id in state.setlike
        if isinstance(expr, ast.Attribute) and \
                isinstance(expr.value, ast.Name) and \
                expr.value.id == "self":
            return any(  # simlint: disable=R3  any() ignores order
                key[1] == expr.attr for key in self.attr_setlike)
        return False

    def _is_stream(self, expr: ast.AST, summary: FunctionSummary,
                   state: _FnState) -> bool:
        info = summary.info
        if isinstance(expr, ast.Name):
            return expr.id in state.streams
        if isinstance(expr, ast.Attribute):
            if _is_self_attr(expr, info):
                return (self._class_qualname(info),
                        expr.attr) in self.attr_stream
            return False
        if isinstance(expr, ast.Call):
            func = expr.func
            if isinstance(func, ast.Attribute) and \
                    func.attr in _STREAM_METHODS:
                return True
            res = self._resolve(info, expr)
            if res.target is not None:
                return self.summaries[res.target.qualname].returns_stream
        return False

    def _taint_attr(self, info: FunctionInfo, attr: str,
                    taint: Set[str]) -> None:
        key = (self._class_qualname(info), attr)
        bucket = self.attr_taint.setdefault(key, set())
        if not taint <= bucket:
            bucket |= taint
            self._changed = True

    @staticmethod
    def _class_qualname(info: FunctionInfo) -> str:
        return "%s.%s" % (info.module.name, info.class_name or "<module>")

    # -- call-site freezing --------------------------------------------------

    def _build_call_sites(self,
                          summary: FunctionSummary) -> List[CallSite]:
        info = summary.info
        state = _FnState()
        for param in info.params:
            state.env[param] = set(summary.param_taint.get(param, ()))
        state.streams |= summary.stream_params
        state.setlike |= summary.setlike_params
        for _pass in range(8):
            before = dict((k, frozenset(v)) for k, v in state.env.items())
            self._walk_body(summary, state)
            if dict((k, frozenset(v))
                    for k, v in state.env.items()) == before:
                break
        bare = {id(node.value) for node in own_nodes(info.node)
                if isinstance(node, ast.Expr)
                and isinstance(node.value, ast.Call)}
        sites: List[CallSite] = []
        for node in own_nodes(info.node):
            if not isinstance(node, ast.Call):
                continue
            func = node.func
            func_attr = func.attr if isinstance(func, ast.Attribute) \
                else None
            receiver_taint: Set[str] = set()
            receiver_stream = False
            if isinstance(func, ast.Attribute):
                receiver_taint = self._taint_of(func.value, summary, state)
                receiver_stream = self._is_stream(func.value, summary,
                                                  state)
            args: List[ArgInfo] = []
            for index, arg in enumerate(node.args):
                args.append(self._arg_info(str(index + 1), arg, summary,
                                           state))
            for keyword in node.keywords:
                if keyword.arg is not None:
                    args.append(self._arg_info(keyword.arg, keyword.value,
                                               summary, state))
            sites.append(CallSite(node, info,
                                  self._resolve(info, node), func_attr,
                                  receiver_taint, receiver_stream, args,
                                  id(node) in bare))
        sites.sort(key=lambda s: (s.node.lineno, s.node.col_offset))
        return sites

    def _arg_info(self, label: str, arg: ast.AST,
                  summary: FunctionSummary, state: _FnState) -> ArgInfo:
        draws = any(
            isinstance(sub, ast.Call)
            and isinstance(sub.func, ast.Attribute)
            and self._is_stream(sub.func.value, summary, state)
            for sub in ast.walk(arg))
        return ArgInfo(label, arg, self._taint_of(arg, summary, state),
                       self._is_stream(arg, summary, state), draws)


# -- small AST helpers -------------------------------------------------------

def _target_names(target: ast.AST) -> Iterator[str]:
    if isinstance(target, ast.Name):
        yield target.id
    elif isinstance(target, (ast.Tuple, ast.List)):
        for element in target.elts:
            yield from _target_names(element)
    elif isinstance(target, ast.Starred):
        yield from _target_names(target.value)


def _is_self_attr(node: ast.AST, info: FunctionInfo) -> bool:
    return (info.is_method and isinstance(node, ast.Attribute)
            and isinstance(node.value, ast.Name)
            and node.value.id == "self")


def _unwrap_order_preserving(expr: ast.AST) -> ast.AST:
    while (isinstance(expr, ast.Call)
           and isinstance(expr.func, ast.Name)
           and expr.func.id in ("list", "tuple", "iter", "enumerate",
                                "reversed")
           and expr.args):
        expr = expr.args[0]
    return expr


def _drawn_names(expr: ast.AST) -> Iterator[str]:
    """Names whose methods are called inside ``expr`` (draw detection)."""
    for sub in ast.walk(expr):
        if isinstance(sub, ast.Call) and \
                isinstance(sub.func, ast.Attribute) and \
                isinstance(sub.func.value, ast.Name):
            yield sub.func.value.id
