"""Whole-program dataflow analysis for simlint (the ``--deep`` pass).

Layers, bottom up:

* :mod:`~repro.analysis.dataflow.symbols` — the project symbol table
  (modules, functions, classes, import aliases);
* :mod:`~repro.analysis.dataflow.callgraph` — syntactic call
  resolution across modules, classes and ``self.*`` methods;
* :mod:`~repro.analysis.dataflow.taint` — a four-kind taint lattice
  (wall-clock, entropy, worker identity, unordered iteration)
  iterated to an interprocedural fixpoint;
* :mod:`~repro.analysis.dataflow.rules` — the deep rules R11–R14.

:func:`analyze_project` is the one-call entry point: parse, resolve,
run the fixpoint, run the deep rules, apply the standard simlint
suppression comments, and return sorted
:class:`~repro.analysis.core.Finding` objects.  Like the per-file
engine it never imports the code under analysis.
"""

from __future__ import annotations

from typing import Iterable, List, Optional

from repro.analysis.core import (
    PARSE_ERROR,
    Finding,
    _parse_suppressions,
    _suppressed,
)
from repro.analysis.dataflow.callgraph import CallGraph, resolve_call
from repro.analysis.dataflow.rules import (
    DeepRule,
    deep_rules,
    register_deep,
    registered_deep_rule_classes,
)
from repro.analysis.dataflow.symbols import (
    ModuleInfo,
    ProjectModel,
    build_project,
)
from repro.analysis.dataflow.taint import TaintEngine

__all__ = ["analyze_project", "build_project", "build_engine",
           "CallGraph", "DeepRule", "deep_rules", "register_deep",
           "registered_deep_rule_classes", "ProjectModel", "ModuleInfo",
           "TaintEngine", "resolve_call"]


def build_engine(paths: Iterable[str]) -> TaintEngine:
    """Parse ``paths`` and run the taint fixpoint; returns the engine."""
    return TaintEngine(build_project(paths)).run()


def analyze_project(paths: Iterable[str],
                    rules: Optional[Iterable[DeepRule]] = None,
                    engine: Optional[TaintEngine] = None
                    ) -> List[Finding]:
    """Run the deep rules over every module under ``paths``.

    Suppression comments (``# simlint: disable=R11`` and
    ``disable-file=``) work exactly as for the per-file rules.  Files
    that do not parse yield one ``E0`` finding each, mirroring the
    shallow engine.
    """
    if engine is None:
        engine = build_engine(paths)
    project = engine.project
    findings: List[Finding] = []
    for path in sorted(project.parse_errors):
        lineno, message = project.parse_errors[path]
        findings.append(Finding(path, lineno, 1, PARSE_ERROR,
                                "parse-error",
                                "file does not parse: %s" % message))
    if rules is None:
        rules = deep_rules()
    seen = set()
    for rule in sorted(rules, key=lambda r: r.code):
        for finding in rule.check_project(engine):
            key = (finding.path, finding.line, finding.col, finding.code,
                   finding.message)
            if key not in seen:
                seen.add(key)
                findings.append(finding)
    # Apply per-module suppression comments.
    suppressions = {}
    for module in project.modules.values():
        suppressions[module.path] = _parse_suppressions(module.source)
    kept = []
    for finding in findings:
        per_line, whole_file = suppressions.get(finding.path,
                                                ({}, set()))
        if not _suppressed(finding, per_line, whole_file):
            kept.append(finding)
    kept.sort(key=lambda f: f.sort_key)
    return kept
