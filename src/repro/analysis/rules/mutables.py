"""R7: mutable default arguments leak state between simulation runs.

A default like ``def run(self, results=[])`` is evaluated once at import
and shared by every call — every simulation run in the process appends
into the same list.  For a stack whose correctness claim is "two runs
with the same seed are identical", cross-run state leakage through
defaults is fatal *and* invisible: the first run passes, the second run
sees the first run's residue.  Use ``None`` and allocate inside the
function (or ``dataclasses.field(default_factory=...)``).
"""

from __future__ import annotations

import ast
from typing import Iterator

from repro.analysis.core import Finding, Rule, RuleContext
from repro.analysis.rules import register

__all__ = ["MutableDefaultRule"]

_MUTABLE_DISPLAYS = (ast.List, ast.Dict, ast.Set, ast.ListComp,
                     ast.DictComp, ast.SetComp)
_MUTABLE_CALLS = frozenset({"list", "dict", "set", "defaultdict", "deque",
                            "Counter", "OrderedDict"})


def _is_mutable(expr: ast.AST) -> bool:
    if isinstance(expr, _MUTABLE_DISPLAYS):
        return True
    return (isinstance(expr, ast.Call) and isinstance(expr.func, ast.Name)
            and expr.func.id in _MUTABLE_CALLS)


@register
class MutableDefaultRule(Rule):
    """Flag mutable default argument values."""

    code = "R7"
    name = "mutable-default"
    interests = (ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda)

    def check(self, node: ast.AST, ctx: RuleContext) -> Iterator[Finding]:
        defaults = list(node.args.defaults)
        defaults.extend(d for d in node.args.kw_defaults if d is not None)
        label = getattr(node, "name", "<lambda>")
        for default in defaults:
            if _is_mutable(default):
                yield self.finding(
                    ctx, default,
                    "mutable default argument in %s() is shared across "
                    "calls (and simulation runs); default to None and "
                    "allocate inside" % label)
