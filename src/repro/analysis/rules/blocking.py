"""R5: simulation processes must not block the host.

A simulation process is a generator resumed by the event loop; the only
way it may "wait" is to yield an event.  ``time.sleep()`` inside one
stalls the entire simulation for real wall-clock time without advancing
``sim.now`` at all, and blocking I/O (sockets, subprocesses, ``input``)
couples the run to the outside world — both wreck reproducibility and
throughput.  The rule confines itself to generator functions, which is
what the kernel executes as processes.
"""

from __future__ import annotations

import ast
from typing import Iterator

from repro.analysis.core import Finding, Rule, RuleContext, dotted_name
from repro.analysis.rules import register

__all__ = ["BlockingCallRule"]

#: Dotted callables that block on the host (wall-clock or real I/O).
_BLOCKING_CALLS = frozenset({
    "time.sleep", "os.system", "os.wait", "os.waitpid",
    "subprocess.run", "subprocess.call", "subprocess.check_call",
    "subprocess.check_output", "socket.create_connection",
    "urllib.request.urlopen", "requests.get", "requests.post",
})

#: Bare names that block when called (after ``from time import sleep``).
_BLOCKING_NAMES = frozenset({"sleep", "input"})


@register
class BlockingCallRule(Rule):
    """Flag blocking calls inside generator (process) functions."""

    code = "R5"
    name = "blocking-call"
    interests = (ast.Call,)

    def check(self, node: ast.AST, ctx: RuleContext) -> Iterator[Finding]:
        dotted = dotted_name(node.func)
        if dotted in _BLOCKING_CALLS:
            blocked = dotted
        elif (isinstance(node.func, ast.Name)
                and node.func.id in _BLOCKING_NAMES):
            blocked = node.func.id
        else:
            return
        if ctx.in_simulation_process(node):
            yield self.finding(
                ctx, node,
                "%s() blocks the host inside a simulation process; "
                "yield sim.timeout(...) instead" % blocked)
