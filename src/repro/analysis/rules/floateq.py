"""R6: float simulation time must not be compared with ``==``.

Simulated timestamps are floats accumulated through arithmetic
(``self.now + delay``, rate divisions, jitter multiplications); two
logically simultaneous times routinely differ in the last ulp.  An exact
``==``/``!=`` against such a value works on one machine and silently
fails on another — classic flaky-simulation material.  Compare with an
epsilon, or restructure so the kernel (which orders events, never
equality-tests times) makes the decision.

The rule recognises time-like operands syntactically: the ``.now``
clock, ``*_time``/``*_at`` names and attributes, and ``deadline``-style
names.  Comparisons against the integer-exact literal ``0`` sentinel are
still flagged — sim code should test ``<= epsilon`` even there.
"""

from __future__ import annotations

import ast
from typing import Iterator

from repro.analysis.core import Finding, Rule, RuleContext
from repro.analysis.rules import register

__all__ = ["FloatTimeEqRule"]

_TIME_NAMES = frozenset({"now", "deadline", "timestamp", "t"})
_TIME_SUFFIXES = ("_time", "_at", "_deadline")


def _is_time_like(expr: ast.AST) -> bool:
    if isinstance(expr, ast.Attribute):
        label = expr.attr
    elif isinstance(expr, ast.Name):
        label = expr.id
    else:
        return False
    return label in _TIME_NAMES or label.endswith(_TIME_SUFFIXES)


@register
class FloatTimeEqRule(Rule):
    """Flag exact equality comparisons on simulation-time values."""

    code = "R6"
    name = "float-time-eq"
    interests = (ast.Compare,)

    def check(self, node: ast.AST, ctx: RuleContext) -> Iterator[Finding]:
        operands = [node.left] + list(node.comparators)
        for op, left, right in zip(node.ops, operands, operands[1:]):
            if not isinstance(op, (ast.Eq, ast.NotEq)):
                continue
            for side in (left, right):
                if _is_time_like(side):
                    # `x == None` style checks are a different bug; the
                    # equality-on-floats concern needs a numeric peer.
                    other = right if side is left else left
                    if isinstance(other, ast.Constant) \
                            and other.value is None:
                        continue
                    yield self.finding(
                        ctx, node,
                        "exact ==/!= on simulation time is float-fragile;"
                        " compare against an epsilon")
                    break
