"""R3: never iterate a set where order can reach the event queue.

Set iteration order depends on hash values; with ``PYTHONHASHSEED``
unset, strings hash differently on every interpreter start, and objects
hash by address on every run.  Any set iteration that schedules events,
draws random numbers, or otherwise feeds simulation state therefore
destroys run-to-run reproducibility.  Wrapping the set in ``list()``
changes nothing — only ``sorted()`` (or replacing the set with an
insertion-ordered dict) imposes a stable order.

The rule flags direct iteration over set displays, set comprehensions
and ``set()``/``frozenset()`` calls, plus iteration over local names and
``self.*`` attributes that were assigned such expressions.
"""

from __future__ import annotations

import ast
from typing import Iterator, List, Set, Tuple

from repro.analysis.core import Finding, Rule, RuleContext
from repro.analysis.rules import register

__all__ = ["SetIterationRule"]

#: Wrappers that preserve the underlying (hash) iteration order.
_ORDER_PRESERVING = frozenset({"list", "tuple", "iter", "enumerate",
                               "reversed"})

_COMPREHENSIONS = (ast.ListComp, ast.SetComp, ast.GeneratorExp,
                   ast.DictComp)


def _unwrap(expr: ast.AST) -> ast.AST:
    """Strip list()/tuple()/... wrappers that keep set order visible."""
    while (isinstance(expr, ast.Call) and isinstance(expr.func, ast.Name)
           and expr.func.id in _ORDER_PRESERVING and expr.args):
        expr = expr.args[0]
    return expr


def _is_set_expr(expr: ast.AST) -> bool:
    if isinstance(expr, (ast.Set, ast.SetComp)):
        return True
    return (isinstance(expr, ast.Call) and isinstance(expr.func, ast.Name)
            and expr.func.id in ("set", "frozenset"))


def _iterated_exprs(node: ast.AST) -> List[ast.AST]:
    """The iterable expressions a For statement/comprehension consumes."""
    if isinstance(node, (ast.For, ast.AsyncFor)):
        return [node.iter]
    if isinstance(node, _COMPREHENSIONS):
        return [generator.iter for generator in node.generators]
    return []


def _own_nodes(scope: ast.AST) -> Iterator[ast.AST]:
    """Walk a scope without descending into nested scopes."""
    todo: List[ast.AST] = list(ast.iter_child_nodes(scope))
    while todo:
        node = todo.pop()
        yield node
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef,
                             ast.Lambda, ast.ClassDef)):
            continue
        todo.extend(ast.iter_child_nodes(node))


@register
class SetIterationRule(Rule):
    """Flag set iteration feeding simulation logic."""

    code = "R3"
    name = "set-iteration"
    interests = (ast.For, ast.AsyncFor) + _COMPREHENSIONS

    def check(self, node: ast.AST, ctx: RuleContext) -> Iterator[Finding]:
        for expr in _iterated_exprs(node):
            if _is_set_expr(_unwrap(expr)):
                yield self.finding(
                    ctx, node,
                    "iterating a set: order is hash-dependent and breaks "
                    "reproducibility; use sorted() or an ordered dict")

    # -- name/attribute propagation -----------------------------------------

    def check_module(self, tree: ast.Module,
                     ctx: RuleContext) -> Iterator[Finding]:
        scopes: List[ast.AST] = [tree]
        scopes.extend(node for node in ast.walk(tree)
                      if isinstance(node, (ast.FunctionDef,
                                           ast.AsyncFunctionDef)))
        for scope in scopes:
            yield from self._check_scope(scope, ctx)
        for node in ast.walk(tree):
            if isinstance(node, ast.ClassDef):
                yield from self._check_class(node, ctx)

    def _check_scope(self, scope: ast.AST,
                     ctx: RuleContext) -> Iterator[Finding]:
        set_names: Set[str] = set()
        for node in _own_nodes(scope):
            for name, value in _assignments(node):
                if _is_set_expr(value):
                    set_names.add(name)
        if not set_names:
            return
        for node in _own_nodes(scope):
            for expr in _iterated_exprs(node):
                expr = _unwrap(expr)
                if isinstance(expr, ast.Name) and expr.id in set_names:
                    yield self.finding(
                        ctx, node,
                        "'%s' holds a set: iteration order is "
                        "hash-dependent; use sorted() or an ordered dict"
                        % expr.id)

    def _check_class(self, klass: ast.ClassDef,
                     ctx: RuleContext) -> Iterator[Finding]:
        set_attrs: Set[str] = set()
        for node in ast.walk(klass):
            for name, value in _self_assignments(node):
                if _is_set_expr(value):
                    set_attrs.add(name)
        if not set_attrs:
            return
        for node in ast.walk(klass):
            for expr in _iterated_exprs(node):
                expr = _unwrap(expr)
                if (isinstance(expr, ast.Attribute)
                        and isinstance(expr.value, ast.Name)
                        and expr.value.id == "self"
                        and expr.attr in set_attrs):
                    yield self.finding(
                        ctx, node,
                        "'self.%s' holds a set: iteration order is "
                        "hash-dependent; use sorted() or an ordered dict"
                        % expr.attr)


def _assignments(node: ast.AST) -> List[Tuple[str, ast.AST]]:
    """(name, value) pairs bound by a plain local assignment."""
    pairs: List[Tuple[str, ast.AST]] = []
    if isinstance(node, ast.Assign):
        for target in node.targets:
            if isinstance(target, ast.Name):
                pairs.append((target.id, node.value))
    elif isinstance(node, ast.AnnAssign) and node.value is not None:
        if isinstance(node.target, ast.Name):
            pairs.append((node.target.id, node.value))
    return pairs


def _self_assignments(node: ast.AST) -> List[Tuple[str, ast.AST]]:
    """(attr, value) pairs bound by ``self.attr = ...`` assignments."""
    pairs: List[Tuple[str, ast.AST]] = []
    targets: List[ast.AST] = []
    value: ast.AST = None
    if isinstance(node, ast.Assign):
        targets, value = node.targets, node.value
    elif isinstance(node, ast.AnnAssign) and node.value is not None:
        targets, value = [node.target], node.value
    for target in targets:
        if (isinstance(target, ast.Attribute)
                and isinstance(target.value, ast.Name)
                and target.value.id == "self"):
            pairs.append((target.attr, value))
    return pairs
