"""R8: heap entries must have a total order.

The event queue is a ``heapq`` of tuples; when two entries compare equal
on their leading elements, Python falls through to comparing the next
element.  A push like ``heappush(queue, (when, event))`` therefore
*works* until two events share a timestamp — then the heap tries
``event < event`` and either raises ``TypeError`` mid-run or, worse,
orders by ``id()`` and is nondeterministic across runs.  The kernel's
own queue shows the fix: ``(time, priority, monotonic_id, event)`` — a
unique integer tie-breaker before the payload guarantees comparisons
never reach the payload object.

The rule flags pushes of 2-element tuples whose final element is not a
constant (no tie-breaker can exist), and pushes of bare constructor
calls (the pushed object must then define a total order itself, which
event/payload classes do not).
"""

from __future__ import annotations

import ast
from typing import Iterator, Optional

from repro.analysis.core import Finding, Rule, RuleContext, dotted_name
from repro.analysis.rules import register

__all__ = ["HeapKeyRule"]


def _heappush_item(node: ast.Call) -> Optional[ast.AST]:
    """The pushed value, if ``node`` is a heappush call."""
    dotted = dotted_name(node.func)
    is_push = dotted == "heapq.heappush" or (
        isinstance(node.func, ast.Name) and node.func.id == "heappush")
    if is_push and len(node.args) >= 2:
        return node.args[1]
    return None


@register
class HeapKeyRule(Rule):
    """Flag heap pushes whose keys lack a total order."""

    code = "R8"
    name = "heap-key"
    interests = (ast.Call,)

    def check(self, node: ast.AST, ctx: RuleContext) -> Iterator[Finding]:
        item = _heappush_item(node)
        if item is None:
            return
        if isinstance(item, ast.Tuple):
            if len(item.elts) < 3 \
                    and not isinstance(item.elts[-1], ast.Constant):
                yield self.finding(
                    ctx, node,
                    "heap entry (key, payload) compares payloads on key "
                    "ties; insert a unique monotonic counter before the "
                    "payload")
        elif isinstance(item, ast.Call):
            yield self.finding(
                ctx, node,
                "pushing a bare object onto a heap relies on the object "
                "defining a total order; push a (key, counter, object) "
                "tuple")
