"""R2: simulated time must never come from the wall clock.

A discrete-event model has exactly one clock: ``sim.now``.  Reading
``time.time()`` (or any monotonic/CPU clock, or ``datetime.now()``)
inside model code couples results to the speed of the machine running
the simulation — the cardinal reproducibility sin.  Wall-clock reads
belong only in harness code that reports real elapsed time, and such
code must say so with a suppression comment.
"""

from __future__ import annotations

import ast
from typing import Iterator

from repro.analysis.core import Finding, Rule, RuleContext, dotted_name
from repro.analysis.rules import register

__all__ = ["WallClockRule"]

#: Fully-dotted callables that read the host clock.
_CLOCK_CALLS = frozenset({
    "time.time", "time.time_ns", "time.monotonic", "time.monotonic_ns",
    "time.perf_counter", "time.perf_counter_ns", "time.process_time",
    "time.process_time_ns", "time.clock",
})

#: (penultimate, final) attribute pairs that read the host clock no
#: matter how the datetime module was imported or aliased.
_CLOCK_SUFFIXES = frozenset({
    ("datetime", "now"), ("datetime", "utcnow"), ("datetime", "today"),
    ("date", "today"),
})


@register
class WallClockRule(Rule):
    """Flag host-clock reads inside simulation model code."""

    code = "R2"
    name = "wall-clock"
    interests = (ast.Call,)

    def check(self, node: ast.AST, ctx: RuleContext) -> Iterator[Finding]:
        dotted = dotted_name(node.func)
        if dotted is None:
            return
        parts = tuple(dotted.split("."))
        hit = dotted in _CLOCK_CALLS or (len(parts) >= 2
                                         and parts[-2:] in _CLOCK_SUFFIXES)
        if hit:
            yield self.finding(
                ctx, node,
                "%s() reads the host clock; simulation code must use "
                "sim.now" % dotted)
