"""R20: streaming collectors must make a retention choice.

A :class:`~repro.simulation.monitor.TimeSeriesMonitor` constructed with
neither ``window=`` nor ``max_samples=`` keeps every sample forever.
On the short paper-scale scenarios that is invisible; on a steady-state
run (the SLA experiments, a week of simulated grid time) each such
collector grows linearly with event count until the process dies —
the classic slow leak that never shows up in tests.

The fix is to pass a retention bound; ``window=None`` passed
*explicitly* also counts as clean, because it states that the series
is meant to be unbounded (e.g. a collector whose full history feeds a
final artifact).  The rule fires only on constructions that make no
choice at all.
"""

from __future__ import annotations

import ast
from typing import Iterator

from repro.analysis.core import Finding, Rule, RuleContext, dotted_name
from repro.analysis.rules import register

__all__ = ["UnboundedCollectorRule"]

#: Collector constructors that retain per-sample state when unbounded.
_COLLECTOR_NAMES = frozenset({"TimeSeriesMonitor"})

#: Keyword arguments that constitute an explicit retention choice.
_RETENTION_KWARGS = frozenset({"window", "max_samples"})


@register
class UnboundedCollectorRule(Rule):
    """Flag collector constructions that never choose a retention bound."""

    code = "R20"
    name = "unbounded-collector"
    interests = (ast.Call,)

    def check(self, node: ast.AST, ctx: RuleContext) -> Iterator[Finding]:
        dotted = dotted_name(node.func)
        if dotted is None:
            return
        if dotted.rsplit(".", 1)[-1] not in _COLLECTOR_NAMES:
            return
        for keyword in node.keywords:
            if keyword.arg is None:
                # A **kwargs splat may carry the bound; benefit of the
                # doubt (the runtime default is still flagged wherever
                # the splat is built from literals).
                return
            if keyword.arg in _RETENTION_KWARGS:
                return
        yield self.finding(
            ctx, node,
            "%s() without window= or max_samples= retains every sample "
            "forever; pass a retention bound, or window=None to declare "
            "the series deliberately unbounded" % dotted)
