"""R1: every random draw must come from a RandomStreams stream.

The global ``random`` module shares one hidden generator across the whole
process: any new caller perturbs every existing consumer's draws, and two
runs are only identical if every import and call happens in exactly the
same order.  A literal-seeded private ``random.Random(0)`` is just as
bad in a different way — every component seeded with the same literal
produces *correlated* draws, and the seed cannot be varied per run.
:class:`repro.simulation.randomness.RandomStreams` exists to solve both;
model code must take an injected stream.
"""

from __future__ import annotations

import ast
from typing import Iterator

from repro.analysis.core import Finding, Rule, RuleContext
from repro.analysis.rules import register

__all__ = ["GlobalRandomRule"]

#: Module-level functions of ``random`` that draw from (or reseed) the
#: hidden shared generator.
_GLOBAL_FNS = frozenset({
    "betavariate", "choice", "choices", "expovariate", "gauss",
    "getrandbits", "lognormvariate", "normalvariate", "paretovariate",
    "randbytes", "randint", "random", "randrange", "sample", "seed",
    "shuffle", "triangular", "uniform", "vonmisesvariate",
    "weibullvariate",
})


@register
class GlobalRandomRule(Rule):
    """Flag global-``random`` calls and unseeded/literal-seeded Randoms."""

    code = "R1"
    name = "global-random"
    interests = (ast.Call, ast.ImportFrom)

    def check(self, node: ast.AST, ctx: RuleContext) -> Iterator[Finding]:
        if isinstance(node, ast.ImportFrom):
            if node.module == "random":
                for alias in node.names:
                    if alias.name != "Random":
                        yield self.finding(
                            ctx, node,
                            "'from random import %s' binds the shared "
                            "global generator; inject a RandomStreams "
                            "stream instead" % alias.name)
            return
        func = node.func
        if not (isinstance(func, ast.Attribute)
                and isinstance(func.value, ast.Name)
                and func.value.id == "random"):
            return
        if func.attr in _GLOBAL_FNS:
            yield self.finding(
                ctx, node,
                "random.%s() draws from the process-global generator; "
                "use a RandomStreams stream" % func.attr)
        elif func.attr == "Random":
            if not node.args and not node.keywords:
                yield self.finding(
                    ctx, node,
                    "random.Random() is seeded from the OS — every run "
                    "differs; use a RandomStreams stream")
            elif node.args and isinstance(node.args[0], ast.Constant):
                yield self.finding(
                    ctx, node,
                    "random.Random(%r) hard-codes a seed, bypassing the "
                    "RandomStreams registry; inject a named stream"
                    % node.args[0].value)
