"""R4: an event that is neither yielded nor stored is lost.

``sim.timeout(...)`` and ``sim.event()`` *create* events; nothing waits
on them until a process yields them (or stores them to yield later, or
composes them with ``all_of``/``any_of``).  A bare expression statement
like::

    self.sim.timeout(self.quantum)     # missing "yield"!

schedules a timeout nobody observes: the process continues at the same
simulated instant and the model silently loses time.  This is the single
most common DES typo, and it never raises.
"""

from __future__ import annotations

import ast
from typing import Iterator

from repro.analysis.core import Finding, Rule, RuleContext
from repro.analysis.rules import register

__all__ = ["LostEventRule"]

#: Factory methods whose Event result must be consumed.
_EVENT_METHODS = frozenset({"timeout", "event", "all_of", "any_of"})
#: Event classes whose instances must be consumed.
_EVENT_CLASSES = frozenset({"Event", "Timeout", "Condition"})


@register
class LostEventRule(Rule):
    """Flag event-producing calls whose result is discarded."""

    code = "R4"
    name = "lost-event"
    interests = (ast.Expr,)

    def check(self, node: ast.AST, ctx: RuleContext) -> Iterator[Finding]:
        call = node.value
        if not isinstance(call, ast.Call):
            return
        func = call.func
        if isinstance(func, ast.Attribute) and func.attr in _EVENT_METHODS:
            yield self.finding(
                ctx, node,
                "result of %s() is discarded — the event is lost; yield "
                "it or store it" % func.attr)
        elif isinstance(func, ast.Name) and func.id in _EVENT_CLASSES:
            yield self.finding(
                ctx, node,
                "%s(...) instance is discarded — the event is lost; "
                "yield it or store it" % func.id)
