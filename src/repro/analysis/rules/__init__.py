"""Built-in simlint rules and the plugin registry.

A rule registers itself with the :func:`register` decorator::

    from repro.analysis.core import Rule
    from repro.analysis.rules import register

    @register
    class MyRule(Rule):
        code = "R10"
        name = "my-rule"
        ...

Importing this package imports every built-in rule module, which fills
the registry as a side effect; third-party extensions import and call
:func:`register` themselves before constructing an
:class:`~repro.analysis.core.Analyzer`.
"""

from __future__ import annotations

from typing import List, Type

from repro.analysis.core import Rule

__all__ = ["register", "default_rules", "registered_rule_classes"]

#: Populated only by the ``@register`` decorations at import time,
#: read-only afterwards — identical in every process, so it cannot
#: couple shards.
_REGISTRY: List[Type[Rule]] = []  # simlint: disable=R15  import-time registry, read-only after import


def register(rule_class: Type[Rule]) -> Type[Rule]:
    """Class decorator: add a Rule subclass to the default rule set."""
    if not (isinstance(rule_class, type) and issubclass(rule_class, Rule)):
        raise TypeError("register() expects a Rule subclass, got %r"
                        % (rule_class,))
    if any(existing.code == rule_class.code for existing in _REGISTRY):
        raise ValueError("duplicate rule code %s" % rule_class.code)
    _REGISTRY.append(rule_class)
    return rule_class


def registered_rule_classes() -> List[Type[Rule]]:
    """The registered classes, sorted by code (R2 before R10)."""
    return sorted(_REGISTRY, key=lambda cls: (len(cls.code), cls.code))


def default_rules() -> List[Rule]:
    """Fresh instances of every registered rule."""
    return [cls() for cls in registered_rule_classes()]


# Importing the built-in rule modules populates the registry.
from repro.analysis.rules import (  # noqa: E402,F401  (import for effect)
    blocking,
    collectors,
    events,
    floateq,
    heapkeys,
    mutables,
    ordering,
    poolsize,
    printing,
    randomness,
    shardchannel,
    wallclock,
)
