"""R10: worker count and worker identity must never influence results.

The replication runner (:mod:`repro.experiments.runner`) fans
independent simulated worlds across a process pool.  That is only safe
while the *model* stays a pure function of the root seed: the moment a
seed, a sample count or a loop bound derives from ``os.cpu_count()``,
``multiprocessing.cpu_count()``, ``os.getpid()`` or a pool-size
variable, ``workers=1`` and ``workers=N`` diverge and every
determinism guarantee in the repo is void.

Two patterns are flagged:

* any call that reads host parallelism or worker identity
  (``os.cpu_count``, ``multiprocessing.cpu_count``,
  ``os.process_cpu_count``, ``os.sched_getaffinity``, ``os.getpid``,
  ``threading.get_ident``) — harness code sizing a *pool* from the
  host may suppress the finding with an explanatory comment, model
  and experiment code may not;
* a seeding call (``random.Random``, ``numpy.random.default_rng``,
  ``RandomStreams``, ``.seed(...)``, ``.spawn_key(...)``) whose
  arguments mention a worker/pool-sized name — seeds must be derived
  from the root seed and the replication index alone.
"""

from __future__ import annotations

import ast
from typing import Iterator

from repro.analysis.core import Finding, Rule, RuleContext, dotted_name
from repro.analysis.rules import register

__all__ = ["PoolSizeRule"]

#: Fully-dotted callables that read host parallelism or worker identity.
_IDENTITY_CALLS = frozenset({
    "os.cpu_count", "multiprocessing.cpu_count", "mp.cpu_count",
    "os.process_cpu_count", "os.sched_getaffinity", "os.getpid",
    "threading.get_ident", "threading.get_native_id",
})

#: Callables whose final attribute alone is damning however the module
#: was imported or aliased.
_IDENTITY_SUFFIXES = frozenset({"cpu_count", "getpid", "sched_getaffinity"})

#: Callables that turn an integer into a stream of randomness.
_SEEDING_CALLS = frozenset({
    "random.Random", "Random", "RandomStreams",
    "default_rng", "seed", "spawn_key",
})

#: Variable names that smell like a worker count or worker identity.
#: Matched as whole identifiers inside seeding-call arguments.
_POOL_NAMES = frozenset({
    "workers", "n_workers", "num_workers", "nworkers", "worker",
    "worker_id", "worker_index", "pool_size", "poolsize", "nproc",
    "nprocs", "n_procs", "num_procs", "rank", "pid",
})


def _mentions_pool_identity(node: ast.AST) -> bool:
    """Does the expression reference a pool/worker-shaped quantity?"""
    for sub in ast.walk(node):
        if isinstance(sub, ast.Name) and sub.id in _POOL_NAMES:
            return True
        if isinstance(sub, ast.Attribute) and sub.attr in _POOL_NAMES:
            return True
        if isinstance(sub, ast.Call):
            dotted = dotted_name(sub.func)
            if dotted is not None and (
                    dotted in _IDENTITY_CALLS
                    or dotted.rsplit(".", 1)[-1] in _IDENTITY_SUFFIXES):
                return True
    return False


@register
class PoolSizeRule(Rule):
    """Flag worker-count/worker-identity reads and pool-derived seeds."""

    code = "R10"
    name = "pool-size"
    interests = (ast.Call,)

    def check(self, node: ast.AST, ctx: RuleContext) -> Iterator[Finding]:
        dotted = dotted_name(node.func)
        if dotted is not None:
            if (dotted in _IDENTITY_CALLS
                    or dotted.rsplit(".", 1)[-1] in _IDENTITY_SUFFIXES):
                yield self.finding(
                    ctx, node,
                    "%s() reads host parallelism/worker identity; results "
                    "must be a pure function of the root seed (pass an "
                    "explicit workers= count through the harness)" % dotted)
                return
            final = dotted.rsplit(".", 1)[-1]
            if dotted in _SEEDING_CALLS or final in _SEEDING_CALLS:
                for arg in list(node.args) + [kw.value
                                              for kw in node.keywords]:
                    if _mentions_pool_identity(arg):
                        yield self.finding(
                            ctx, node,
                            "%s() seeded from a worker/pool-sized "
                            "quantity; derive child seeds from the root "
                            "seed and the replication index only "
                            "(RandomStreams.spawn_key)" % dotted)
                        return
