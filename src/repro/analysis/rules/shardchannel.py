"""R21: cross-shard kernel access must go through the channel API.

The sharded engine's determinism contract holds only while every
cross-shard interaction travels as a stamped
:class:`~repro.simulation.sharded.ShardMessage` through
``ShardWorld.send`` / ``ShardWorld.on_message``.  Code that reaches
*through* a world handle into the underlying kernel —
``world.sim.call_at(...)``, ``kernel.world.sim.schedule(...)``, or
aliasing ``world.sim`` into a variable that escapes — can mutate a
shard's event queue without a stamp, and the mutation's effect then
depends on which barrier round happened to carry it: the classic
placement-dependent heisenbug the engine exists to rule out.

A world handle, for this rule, is a name assigned from a
``ShardWorld(...)`` construction, any attribute chain ending in
``.world`` (the conventional kernel-side back-reference), or a direct
``ShardWorld(...)`` call expression.  Reading ``.sim.now``,
``.sim.peek()`` or ``.sim.seed`` through a handle is allowed — those
are pure observations a message handler legitimately needs.  The
engine's own round loop owns its shards and suppresses the rule
inline (``# simlint: disable=R21``).
"""

from __future__ import annotations

import ast
from typing import Iterator, Set

from repro.analysis.core import Finding, Rule, RuleContext, dotted_name
from repro.analysis.rules import register

__all__ = ["CrossShardAccessRule"]

#: Read-only kernel members a handler may observe through a handle.
_READ_ONLY = frozenset({"now", "peek", "seed"})


def _is_world_construction(node: ast.AST) -> bool:
    """Is ``node`` a ``ShardWorld(...)`` (possibly dotted) call?"""
    if not isinstance(node, ast.Call):
        return False
    dotted = dotted_name(node.func)
    return dotted is not None and dotted.rsplit(".", 1)[-1] == "ShardWorld"


def _world_names(tree: ast.Module) -> Set[str]:
    """Names bound to a ``ShardWorld(...)`` anywhere in the module."""
    names: Set[str] = set()
    for node in ast.walk(tree):
        if isinstance(node, ast.Assign) and _is_world_construction(node.value):
            for target in node.targets:
                if isinstance(target, ast.Name):
                    names.add(target.id)
        elif isinstance(node, (ast.AnnAssign, ast.NamedExpr)) \
                and node.value is not None \
                and _is_world_construction(node.value):
            if isinstance(node.target, ast.Name):
                names.add(node.target.id)
    return names


@register
class CrossShardAccessRule(Rule):
    """Flag kernel access through a shard-world handle that bypasses
    the stamped channel API."""

    code = "R21"
    name = "cross-shard-access"

    def check_module(self, tree: ast.Module,
                     ctx: RuleContext) -> Iterator[Finding]:
        worlds = _world_names(tree)
        for node in ast.walk(tree):
            if not (isinstance(node, ast.Attribute) and node.attr == "sim"):
                continue
            if not self._is_world_handle(node.value, worlds):
                continue
            parent = ctx.parents.get(node)
            if isinstance(parent, ast.Attribute):
                if parent.attr in _READ_ONLY:
                    continue  # world.sim.now and friends: pure reads
                yield self.finding(
                    ctx, parent,
                    "cross-shard kernel access: .sim.%s through a shard "
                    "world handle bypasses the stamped channel API; use "
                    "ShardWorld.send()/on_message() (only .sim.now, "
                    ".sim.peek and .sim.seed are read-safe)" % parent.attr)
            else:
                yield self.finding(
                    ctx, node,
                    "shard kernel handle escapes: aliasing or passing "
                    "world.sim lets callers mutate the shard's event "
                    "queue without a stamped message; keep kernel access "
                    "behind ShardWorld.send()/on_message()")

    @staticmethod
    def _is_world_handle(node: ast.AST, worlds: Set[str]) -> bool:
        if isinstance(node, ast.Name):
            return node.id in worlds
        if isinstance(node, ast.Attribute):
            return node.attr == "world"
        return _is_world_construction(node)
