"""R9: model code must not print; report through tracer/metrics.

A ``print()`` buried in the simulation stack is invisible observability:
it bypasses the tracer and metrics registry, interleaves arbitrarily
with harness output, and (worse) tempts callers into parsing stdout.
Everything a model component wants to say belongs in a span, an
instant, a counter, or a returned value.  Only the CLI front ends
(``cli.py``) and the report formatter (``reporting.py``) are in the
business of writing to stdout.
"""

from __future__ import annotations

import ast
import os
from typing import Iterator

from repro.analysis.core import Finding, Rule, RuleContext
from repro.analysis.rules import register

__all__ = ["BarePrintRule"]

#: Module basenames whose whole job is producing console output.
_OUTPUT_MODULES = frozenset({"cli.py", "reporting.py"})


@register
class BarePrintRule(Rule):
    """Flag ``print()`` calls outside the designated output modules."""

    code = "R9"
    name = "bare-print"
    interests = (ast.Call,)

    def check(self, node: ast.AST, ctx: RuleContext) -> Iterator[Finding]:
        if os.path.basename(ctx.path) in _OUTPUT_MODULES:
            return
        func = node.func
        if isinstance(func, ast.Name) and func.id == "print":
            yield self.finding(
                ctx, node,
                "print() in model code; emit a trace span/instant, a "
                "metric, or return the value instead")
