"""Findings baseline — the ratchet that lets CI fail only on *new* debt.

A baseline file records, per finding *fingerprint*, how many findings
with that fingerprint existed when the baseline was written.  The
fingerprint is deliberately line-insensitive — ``(path, code,
message)`` — so unrelated edits that shift a legacy finding up or down
a few lines do not break the build, while a genuinely new finding (new
file, new rule code, or new message text) always does.

``repro analyze --baseline analysis-baseline.json`` filters the run's
findings down to the ones *not* covered by the baseline: for each
fingerprint, up to the recorded count is absorbed, and any excess
surfaces.  Counts only ratchet down — regenerate the file with
``--write-baseline`` after paying down debt.
"""

from __future__ import annotations

import json
import os
from typing import Dict, List, Tuple

from repro.analysis.core import Finding

__all__ = ["BASELINE_VERSION", "fingerprint", "make_baseline",
           "render_baseline", "load_baseline", "filter_new"]

BASELINE_VERSION = 1

Fingerprint = Tuple[str, str, str]


def fingerprint(finding: Finding, root: str = ".") -> Fingerprint:
    """Line-insensitive identity of a finding: (relpath, code, message)."""
    path = finding.path
    try:
        rel = os.path.relpath(path, root)
    except ValueError:  # different drive on win32
        rel = path
    if not rel.startswith(".."):
        path = rel
    return (path.replace(os.sep, "/"), finding.code, finding.message)


def make_baseline(findings: List[Finding], root: str = ".") -> Dict:
    """A JSON-ready baseline document covering ``findings``."""
    counts: Dict[Fingerprint, int] = {}
    for finding in findings:
        key = fingerprint(finding, root)
        counts[key] = counts.get(key, 0) + 1
    return {
        "version": BASELINE_VERSION,
        "tool": "simlint",
        "findings": [
            {"path": path, "code": code, "message": message,
             "count": counts[(path, code, message)]}
            for path, code, message in sorted(counts)
        ],
    }


def render_baseline(findings: List[Finding], root: str = ".") -> str:
    """The baseline as deterministic, pretty-printed JSON."""
    return json.dumps(make_baseline(findings, root), indent=2,
                      sort_keys=True) + "\n"


def load_baseline(path: str) -> Dict[Fingerprint, int]:
    """Read a baseline file into a fingerprint -> count map.

    Raises ``ValueError`` on a malformed or wrong-version document so
    the CLI can report a usable error instead of silently absorbing
    nothing (or everything).
    """
    with open(path, "r", encoding="utf-8") as handle:
        document = json.load(handle)
    if not isinstance(document, dict) or \
            document.get("version") != BASELINE_VERSION:
        raise ValueError("unsupported baseline version in %s" % path)
    counts: Dict[Fingerprint, int] = {}
    for entry in document.get("findings", ()):
        key = (str(entry["path"]), str(entry["code"]),
               str(entry["message"]))
        counts[key] = counts.get(key, 0) + int(entry.get("count", 1))
    return counts


def filter_new(findings: List[Finding],
               baseline: Dict[Fingerprint, int],
               root: str = ".") -> List[Finding]:
    """The findings not absorbed by ``baseline`` (the ratchet).

    For each fingerprint the baseline absorbs up to its recorded count;
    findings beyond that — or with an unknown fingerprint — are new.
    Order within a fingerprint follows the findings' sort order, so the
    surviving ones are the later occurrences.
    """
    budget = dict(baseline)
    fresh: List[Finding] = []
    for finding in findings:
        key = fingerprint(finding, root)
        remaining = budget.get(key, 0)
        if remaining > 0:
            budget[key] = remaining - 1
        else:
            fresh.append(finding)
    return fresh
