"""scalecheck — the growth-dimension pass (the ``--scale`` flag).

Infers a growth dimension for every container the analyzed tree
constructs (bounded < per-host < per-site < per-session; see
:mod:`repro.analysis.scale.model`) and runs the complexity rules
R22–R26 (:mod:`repro.analysis.scale.rules`) over it: per-event linear
scans, unbounded accumulation, quadratic membership, kernel-loop
allocation, and hot-path cache rebuilds.  :func:`analyze_scale`
mirrors :func:`repro.analysis.shard.analyze_shard`: parse, classify,
run the rules, apply the standard simlint suppression comments, return
sorted Finding objects — never importing the code under analysis.

:mod:`repro.analysis.scale.inventory` renders the whole model as
``docs/scale-readiness.md``, the work-list the brokered task-queue
layer (ROADMAP item 2) consumes.
"""

from __future__ import annotations

from typing import Iterable, List, Optional

from repro.analysis.core import (
    PARSE_ERROR,
    Finding,
    _parse_suppressions,
    _suppressed,
)
from repro.analysis.scale.model import (
    BOUNDED,
    PER_HOST,
    PER_SITE,
    POPULATION,
    ScaleModel,
    build_scale_model,
    dim_order,
)
from repro.analysis.scale.rules import (
    ScaleRule,
    register_scale,
    registered_scale_rule_classes,
    scale_rules,
)

__all__ = ["analyze_scale", "build_scale_model", "ScaleModel",
           "ScaleRule", "scale_rules", "register_scale",
           "registered_scale_rule_classes", "dim_order",
           "BOUNDED", "PER_HOST", "PER_SITE", "POPULATION"]


def analyze_scale(paths: Iterable[str],
                  rules: Optional[Iterable[ScaleRule]] = None,
                  model: Optional[ScaleModel] = None) -> List[Finding]:
    """Run the scale rules over every module under ``paths``.

    Suppression comments (``# simlint: disable=R22`` and
    ``disable-file=``) work exactly as for the per-file, deep and
    shard rules; unparsable files yield one ``E0`` finding each.
    """
    if model is None:
        model = build_scale_model(paths)
    project = model.project
    findings: List[Finding] = []
    for path in sorted(project.parse_errors):
        lineno, message = project.parse_errors[path]
        findings.append(Finding(path, lineno, 1, PARSE_ERROR,
                                "parse-error",
                                "file does not parse: %s" % message))
    if rules is None:
        rules = scale_rules()
    seen = set()
    for rule in sorted(rules, key=lambda r: r.code):
        for finding in rule.check_model(model):
            key = (finding.path, finding.line, finding.col, finding.code,
                   finding.message)
            if key not in seen:
                seen.add(key)
                findings.append(finding)
    suppressions = {}
    for module in project.modules.values():
        suppressions[module.path] = _parse_suppressions(module.source)
    kept = []
    for finding in findings:
        per_line, whole_file = suppressions.get(finding.path,
                                                ({}, set()))
        if not _suppressed(finding, per_line, whole_file):
            kept.append(finding)
    kept.sort(key=lambda f: f.sort_key)
    return kept
