"""The growth-dimension rules R22–R26 (the ``--scale`` pass).

Where R15–R19 chase *ownership* (who may touch state), these five
rules chase *complexity*: per-event work or memory that is
proportional to the session population, the failure mode that turns a
million-session run into a quadratic crawl.  Each rule reads the
:class:`~repro.analysis.scale.model.ScaleModel` — inferred growth
dimensions plus the per-event hot set — and reports at most one
finding per (collection, function) pair, so one suppression comment
covers one remediation decision.

* **R22** ``per-event-linear-scan`` — a loop or comprehension over a
  population-dimensioned collection inside a hot function: O(n) work
  per event, O(n²) per scenario.  Index the lookup or maintain the
  derived result incrementally.
* **R23** ``unbounded-growth-container`` — a population-dimensioned
  container that grows on a hot path and is never shrunk anywhere in
  the project: memory proportional to total events processed.
  Generalizes R20 (unbounded obs collectors) to arbitrary model state.
* **R24** ``quadratic-membership`` — ``x in <list>`` against a
  population-dimensioned *list* on a hot path or inside a loop (a
  linear probe per test), or ``sorted()``/``min()``/``max()`` over a
  population collection inside a loop (a full ordered pass per
  iteration).
* **R25** ``per-event-allocation`` — a fresh dict/list/set,
  comprehension, lambda or nested def built inside a loop in a kernel
  drain method: allocator pressure on the single hottest path in the
  system.
* **R26** ``rebuild-in-hot-path`` — a cache/memo-named structure
  recomputed from scratch (comprehension or ``refill``/``rebuild``/
  ``recompute``-shaped call) inside a hot function without an
  invalidation guard.  The sanctioned pattern rebuilds at most once
  per invalidation epoch behind an ``if ... is None`` / epoch test.

Scale rules register with :func:`register_scale` and yield the same
:class:`~repro.analysis.core.Finding` objects as every other pass, so
suppressions, SARIF export and the baseline ratchet apply unchanged.
"""

from __future__ import annotations

import ast
from typing import Dict, Iterator, List, Tuple, Type

from repro.analysis.core import Finding
from repro.analysis.scale.model import (
    POPULATION,
    ScaleModel,
    UseSite,
)

__all__ = ["ScaleRule", "register_scale", "scale_rules",
           "registered_scale_rule_classes",
           "PerEventLinearScanRule", "UnboundedGrowthContainerRule",
           "QuadraticMembershipRule", "PerEventAllocationRule",
           "RebuildInHotPathRule"]

#: Import-time registry of scale rule classes; append-only, populated
#: by the ``register_scale`` decorations below and never written after
#: import.  # simlint: disable-file=R15
_SCALE_REGISTRY: List[Type["ScaleRule"]] = []


def register_scale(rule_class: Type["ScaleRule"]) -> Type["ScaleRule"]:
    """Class decorator: add a ScaleRule subclass to the scale rule set."""
    if not (isinstance(rule_class, type)
            and issubclass(rule_class, ScaleRule)):
        raise TypeError("register_scale() expects a ScaleRule subclass, "
                        "got %r" % (rule_class,))
    if any(existing.code == rule_class.code
           for existing in _SCALE_REGISTRY):
        raise ValueError("duplicate scale rule code %s" % rule_class.code)
    _SCALE_REGISTRY.append(rule_class)
    return rule_class


def registered_scale_rule_classes() -> List[Type["ScaleRule"]]:
    """The registered classes, sorted by code."""
    return sorted(_SCALE_REGISTRY,
                  key=lambda cls: (len(cls.code), cls.code))


def scale_rules() -> List["ScaleRule"]:
    """Fresh instances of every registered scale rule."""
    return [cls() for cls in registered_scale_rule_classes()]


class ScaleRule:
    """Base class for growth-dimension rules.

    Subclasses set ``code``/``name`` and implement :meth:`check_model`,
    yielding :class:`~repro.analysis.core.Finding` objects over a
    :class:`~repro.analysis.scale.model.ScaleModel`.
    """

    code: str = "R0"
    name: str = "abstract-scale-rule"

    def check_model(self, model: ScaleModel) -> Iterator[Finding]:
        """Yield findings over the growth-dimension model."""
        return iter(())  # pragma: no cover

    def finding(self, path: str, node: ast.AST, message: str) -> Finding:
        return Finding(path, getattr(node, "lineno", 1),
                       getattr(node, "col_offset", 0) + 1,
                       self.code, self.name, message)

    def __repr__(self) -> str:
        return "<ScaleRule %s %s>" % (self.code, self.name)


def _by_function(sites: List[UseSite]) -> List[Tuple[str, List[UseSite]]]:
    """Sites grouped per enclosing function, module level excluded."""
    grouped: Dict[str, List[UseSite]] = {}
    for site in sites:
        if site.function is None:
            continue
        grouped.setdefault(site.function.qualname, []).append(site)
    result = []
    for qualname in sorted(grouped):
        group = sorted(grouped[qualname],
                       key=lambda s: (s.module.path,
                                      getattr(s.node, "lineno", 1)))
        result.append((qualname, group))
    return result


def _extra(count: int) -> str:
    return "" if count == 1 else " and %d more site(s)" % (count - 1)


@register_scale
class PerEventLinearScanRule(ScaleRule):
    """R22: O(population) iteration inside per-event code."""

    code = "R22"
    name = "per-event-linear-scan"

    def check_model(self, model: ScaleModel) -> Iterator[Finding]:
        for collection in model.sorted_collections():
            if collection.dimension != POPULATION:
                continue
            for qualname, sites in _by_function(collection.scans):
                if not model.is_hot(qualname):
                    continue
                first = sites[0]
                yield self.finding(
                    first.module.path, first.node,
                    "%s iterates %s-dimensioned %r (%s) on a per-event "
                    "path (%s)%s — O(population) work per event; index "
                    "the lookup or maintain the result incrementally"
                    % (qualname, collection.dimension, collection.label,
                       collection.why, model.hot[qualname],
                       _extra(len(sites))))


@register_scale
class UnboundedGrowthContainerRule(ScaleRule):
    """R23: population state that grows per event and is never evicted."""

    code = "R23"
    name = "unbounded-growth-container"

    def check_model(self, model: ScaleModel) -> Iterator[Finding]:
        for collection in model.sorted_collections():
            if collection.dimension != POPULATION or collection.shrinks:
                continue
            hot_grows = [site for site in collection.grows
                         if site.function is not None
                         and model.is_hot(site.function.qualname)]
            if not hot_grows:
                continue
            first = min(hot_grows,
                        key=lambda s: (s.module.path,
                                       getattr(s.node, "lineno", 1)))
            yield self.finding(
                collection.module.path, collection.node,
                "%s %r grows per event at %s%s and is never shrunk — "
                "memory is O(total sessions); evict on completion, "
                "bound it, or stream aggregates instead (generalizes "
                "R20)" % (collection.kind, collection.label, first.where,
                          _extra(len(hot_grows))))


@register_scale
class QuadraticMembershipRule(ScaleRule):
    """R24: linear membership probes and sorted passes over population."""

    code = "R24"
    name = "quadratic-membership"

    def check_model(self, model: ScaleModel) -> Iterator[Finding]:
        for collection in model.sorted_collections():
            if collection.dimension != POPULATION:
                continue
            if collection.kind in ("list", "deque"):
                for qualname, sites in _by_function(
                        collection.memberships):
                    live = [s for s in sites
                            if s.in_loop or model.is_hot(qualname)]
                    if not live:
                        continue
                    yield self.finding(
                        live[0].module.path, live[0].node,
                        "%s probes membership in %s %r (%s) — a linear "
                        "scan per test, quadratic once per session%s; "
                        "key it as a dict/set"
                        % (qualname, collection.kind, collection.label,
                           collection.why, _extra(len(live))))
            for qualname, sites in _by_function(collection.sorts):
                live = [s for s in sites if s.in_loop]
                if not live:
                    continue
                yield self.finding(
                    live[0].module.path, live[0].node,
                    "%s runs %s() over %s-dimensioned %r inside a loop "
                    "— a full O(n log n) pass per iteration%s; hoist "
                    "it or keep the extremum incrementally"
                    % (qualname, live[0].how, collection.dimension,
                       collection.label, _extra(len(live))))


@register_scale
class PerEventAllocationRule(ScaleRule):
    """R25: fresh containers/closures built inside kernel drain loops."""

    code = "R25"
    name = "per-event-allocation"

    def check_model(self, model: ScaleModel) -> Iterator[Finding]:
        grouped: Dict[str, List] = {}
        for site in model.kernel_allocs:
            grouped.setdefault(site.function.qualname, []).append(site)
        for qualname in sorted(grouped):
            sites = sorted(grouped[qualname],
                           key=lambda s: (s.function.module.path,
                                          getattr(s.node, "lineno", 1)))
            first = sites[0]
            kinds = sorted({site.what for site in sites})
            yield self.finding(
                first.function.module.path, first.node,
                "kernel drain method %s builds a fresh %s inside its "
                "event loop%s — one allocation per drained event; "
                "hoist it out of the loop or reuse a scratch object"
                % (qualname, "/".join(kinds), _extra(len(sites))))


@register_scale
class RebuildInHotPathRule(ScaleRule):
    """R26: memoized structures recomputed per event, not per epoch."""

    code = "R26"
    name = "rebuild-in-hot-path"

    def check_model(self, model: ScaleModel) -> Iterator[Finding]:
        sites = sorted(model.rebuild_sites,
                       key=lambda s: (s.function.module.path,
                                      getattr(s.node, "lineno", 1)))
        for site in sites:
            if site.guarded:
                continue
            yield self.finding(
                site.function.module.path, site.node,
                "%s rebuilds %r from scratch on every invocation of a "
                "per-event path (%s) — rebuild at most once per "
                "invalidation epoch: guard with `if ... is None` or an "
                "epoch/generation check"
                % (site.function.qualname, site.target,
                   model.hot.get(site.function.qualname,
                                 "per-event path")))
