"""The growth-dimension model: how big can each collection get?

The ROADMAP's north star is sustained traffic from millions of users;
ROADMAP item 2 (brokered task queues over open arrivals) assumes that
per-event cost stays flat while the session population explodes.  That
assumption fails exactly where a collection's *size* is proportional to
the population and some per-event code walks it.  This module infers,
for every container the analyzed tree constructs, which growth
dimension bounds it:

* :data:`BOUNDED` — size independent of scenario scale (config tables,
  rule registries, fixed pools);
* :data:`PER_HOST` — one entry per physical host (sensors, NICs);
* :data:`PER_SITE` — one entry per site (services, gateways);
* :data:`POPULATION` — one entry per session/VM/job/user/request: the
  dimension that grows without bound under open arrivals.

Ordered ``BOUNDED < PER_HOST < PER_SITE < POPULATION``, a collection
starts bounded and evidence promotes it:

1. **naming** — the attribute name contains a population word
   (``sessions``, ``vms``, ``jobs`` …) or a host/site word;
2. **keying identifiers** — the values appended or the keys stored
   mention session/VM/job/user-shaped identifiers (``vm_name``,
   ``flow``, ``user``), the strongest syntactic signal;
3. **per-event accumulation** — the collection grows on a hot path
   (see below) and *no* code path ever shrinks it: whatever its entries
   are, their count is proportional to the events processed.

The model rides the ``--deep`` project representation
(:mod:`repro.analysis.dataflow.symbols`) and its call graph.  The **hot
set** — functions that run per simulated event — is the call-graph
closure of (a) every generator function (simulation processes and
event handlers by construction of the DES kernel) and (b) the kernel
drain methods.  Because the syntactic call graph cannot resolve
``obj.method()`` through attributes, the closure additionally follows
*method names*: an unresolved ``x.create_vm(...)`` inside a hot
function marks every project method named ``create_vm`` hot.  That
over-approximates — deliberately: for a lint pass, a false hot
function costs one justified suppression, a false cold one hides a
real million-session collapse.

Rules R22–R26 (:mod:`repro.analysis.scale.rules`) read this model; the
generated ``docs/scale-readiness.md`` (:mod:`repro.analysis.scale.
inventory`) renders every non-bounded collection with provenance.
"""

from __future__ import annotations

import ast
import re
from typing import Dict, Iterable, List, Optional, Set, Tuple

from repro.analysis.dataflow.callgraph import CallGraph
from repro.analysis.dataflow.symbols import (
    FunctionInfo,
    ModuleInfo,
    ProjectModel,
    build_project,
)

__all__ = ["BOUNDED", "PER_HOST", "PER_SITE", "POPULATION", "DIMENSIONS",
           "dim_order", "UseSite", "TrackedCollection", "RebuildSite",
           "AllocSite", "ScaleModel", "build_scale_model"]

# -- the growth-dimension lattice ------------------------------------------

#: Size independent of scenario scale.
BOUNDED = "bounded"
#: One entry per physical host.
PER_HOST = "per-host"
#: One entry per site.
PER_SITE = "per-site"
#: One entry per session/VM/job/user/request — unbounded under open
#: arrivals, the dimension the scale rules act on.
POPULATION = "per-session"

DIMENSIONS = (BOUNDED, PER_HOST, PER_SITE, POPULATION)
_ORDER = {dim: index for index, dim in enumerate(DIMENSIONS)}


def dim_order(dimension: str) -> int:
    """Position of ``dimension`` on the lattice (bigger grows faster)."""
    return _ORDER[dimension]


#: Identifier shapes that name one member of the session population.
_POP_ID_RE = re.compile(
    r"(?:^|_)(session|job|task|vm|user|request|flow|account|decision|"
    r"outcome|record|arrival|pilot)s?(?:_|$)")
#: Identifier shapes that name one physical host.
_HOST_ID_RE = re.compile(r"(?:^|_)(host|machine|node)s?(?:_|$)")
#: Identifier shapes that name one site.
_SITE_ID_RE = re.compile(r"(?:^|_)(site)s?(?:_|$)")

#: Cache/memo-shaped names (R26 anchors on these).
_CACHE_NAME_RE = re.compile(r"cache|memo", re.IGNORECASE)
#: Callee names that rebuild a derived structure from scratch.
_REBUILD_RE = re.compile(r"refill|rebuild|recompute|recalc|sorted",
                         re.IGNORECASE)
#: Names in a guard test that mark a sanctioned invalidation check.
_INVALIDATION_RE = re.compile(
    r"epoch|generation|dirty|stale|version|valid|cache|memo|fresh|miss",
    re.IGNORECASE)

#: Receiver methods that add entries.
_GROW_METHODS = frozenset({"append", "appendleft", "add", "insert",
                           "extend", "extendleft", "setdefault", "update"})
#: Receiver methods that remove entries.
_SHRINK_METHODS = frozenset({"pop", "popleft", "popitem", "remove",
                             "discard", "clear"})
#: Calls through which the receiver chain is transparent
#: (``d.get(k, []).append(x)`` still grows ``d``'s contents).
_TRANSPARENT_METHODS = frozenset({"get", "setdefault", "values", "items",
                                  "keys", "copy"})
#: Builtins through which iteration is transparent
#: (``for x in sorted(coll)`` still scans ``coll``).
_TRANSPARENT_CALLS = frozenset({"list", "tuple", "sorted", "reversed",
                                "enumerate", "set", "frozenset", "iter"})
#: Builtins that imply a full ordered pass over their first argument.
_SORTISH_CALLS = frozenset({"sorted", "min", "max"})

#: Constructors whose result is a trackable container.
_CONTAINER_CONSTRUCTORS = {
    "dict": "dict", "list": "list", "set": "set",
    "collections.defaultdict": "dict", "collections.OrderedDict": "dict",
    "collections.deque": "deque", "collections.Counter": "dict",
}

#: Kernel drain methods: (class name, method name) pairs that run once
#: per drained event.  Subclass overrides found by base-walking count
#: too.
_DRAIN_SEEDS = frozenset({
    ("Simulation", "step"), ("Simulation", "_run_fast"),
    ("Simulation", "run"), ("Simulation", "run_until_complete"),
    ("Simulation", "_pop_next"), ("Simulation", "_enqueue_event"),
    ("Simulation", "peek"),
    ("Event", "succeed"), ("Event", "fail"), ("Event", "_process"),
    ("Process", "_resume"), ("Condition", "_check"),
})

#: Method names the name-based hot closure never follows: container and
#: stdlib verbs that would connect everything to everything.
_CHA_STOPLIST = frozenset({
    "append", "appendleft", "add", "insert", "extend", "extendleft",
    "setdefault", "update", "pop", "popleft", "popitem", "remove",
    "discard", "clear", "get", "keys", "values", "items", "copy",
    "sort", "reverse", "count", "index", "join", "split", "strip",
    "format", "startswith", "endswith", "encode", "decode", "observe",
    "inc", "dec", "set", "begin", "end", "close", "write", "read",
})


def _classify_identifier(name: str) -> Tuple[str, Optional[str]]:
    """(dimension, matched word) for one identifier."""
    lowered = name.lower()
    match = _POP_ID_RE.search(lowered)
    if match:
        return POPULATION, match.group(1)
    match = _SITE_ID_RE.search(lowered)
    if match:
        return PER_SITE, match.group(1)
    match = _HOST_ID_RE.search(lowered)
    if match:
        return PER_HOST, match.group(1)
    return BOUNDED, None


class UseSite:
    """One place a tracked collection is touched."""

    __slots__ = ("function", "module", "node", "how", "in_loop")

    def __init__(self, function: Optional[FunctionInfo],
                 module: ModuleInfo, node: ast.AST, how: str,
                 in_loop: bool = False):
        #: None for module-level (import-time) code.
        self.function = function
        self.module = module
        self.node = node
        #: "append" | "store" | "reset" | "del" | "remove" | "scan" |
        #: "membership" | "sortish" | ...
        self.how = how
        self.in_loop = in_loop

    @property
    def where(self) -> str:
        return "%s:%d" % (self.module.path, getattr(self.node, "lineno", 1))

    def __repr__(self) -> str:
        return "<UseSite %s %s>" % (self.how, self.where)


class TrackedCollection:
    """One container the tree constructs, with its inferred dimension."""

    __slots__ = ("module", "owner", "name", "node", "kind",
                 "construct_func", "dimension", "why",
                 "grows", "shrinks", "scans", "memberships", "sorts")

    def __init__(self, module: ModuleInfo, owner: Optional[str],
                 name: str, node: ast.AST, kind: str,
                 construct_func: Optional[FunctionInfo]):
        self.module = module
        #: Owning class *qualname* for instance attributes, None for
        #: module-level containers.
        self.owner = owner
        self.name = name
        self.node = node
        #: "dict" | "list" | "set" | "deque"
        self.kind = kind
        self.construct_func = construct_func
        self.dimension = BOUNDED
        self.why = "no growth evidence"
        self.grows: List[UseSite] = []
        self.shrinks: List[UseSite] = []
        self.scans: List[UseSite] = []
        self.memberships: List[UseSite] = []
        self.sorts: List[UseSite] = []

    @property
    def label(self) -> str:
        """The name as written: ``Class.attr`` or the bare name."""
        if self.owner is None:
            return self.name
        return "%s.%s" % (self.owner.rsplit(".", 1)[-1], self.name)

    @property
    def qualname(self) -> str:
        if self.owner is None:
            return "%s.%s" % (self.module.name, self.name)
        return "%s.%s" % (self.owner, self.name)

    @property
    def where(self) -> str:
        return "%s:%d" % (self.module.path, getattr(self.node, "lineno", 1))

    def promote(self, dimension: str, why: str) -> None:
        if _ORDER[dimension] > _ORDER[self.dimension]:
            self.dimension = dimension
            self.why = why

    def __repr__(self) -> str:
        return "<TrackedCollection %s %s (%s)>" % (
            self.qualname, self.kind, self.dimension)


class RebuildSite:
    """One cache-named assignment rebuilt inside a hot function (R26)."""

    __slots__ = ("function", "node", "target", "guarded")

    def __init__(self, function: FunctionInfo, node: ast.AST,
                 target: str, guarded: bool):
        self.function = function
        self.node = node
        self.target = target
        #: True when an enclosing test checks ``is None`` / an epoch —
        #: the sanctioned rebuild-per-invalidation pattern.
        self.guarded = guarded

    def __repr__(self) -> str:
        return "<RebuildSite %s = ... guarded=%r>" % (self.target,
                                                      self.guarded)


class AllocSite:
    """One fresh container/closure built inside a kernel drain loop."""

    __slots__ = ("function", "node", "what")

    def __init__(self, function: FunctionInfo, node: ast.AST, what: str):
        self.function = function
        self.node = node
        #: "dict" | "list" | "set" | "comprehension" | "lambda" |
        #: "closure"
        self.what = what

    def __repr__(self) -> str:
        return "<AllocSite %s in %s>" % (self.what,
                                         self.function.qualname)


class ScaleModel:
    """The project plus everything the scale rules need."""

    def __init__(self, project: ProjectModel):
        self.project = project
        self.graph = CallGraph(project)
        #: (owner key, attr) -> TrackedCollection, where the owner key
        #: is a class qualname or a module name.
        self.collections: Dict[Tuple[str, str], TrackedCollection] = {}
        #: Function qualname -> why it runs per event.
        self.hot: Dict[str, str] = {}
        #: The kernel drain subset of ``hot`` (R25's scope).
        self.kernel_hot: Dict[str, str] = {}
        self.rebuild_sites: List[RebuildSite] = []
        self.kernel_allocs: List[AllocSite] = []
        #: Method name -> sorted method qualnames (the CHA-lite index).
        self._methods_by_name: Dict[str, List[str]] = {}
        self._index_methods()
        self._compute_hot()
        self._collect_collections()
        self._scan_functions()
        self._infer_dimensions()

    # -- hot-path computation ----------------------------------------------

    def _index_methods(self) -> None:
        for qualname in sorted(self.project.functions):
            info = self.project.functions[qualname]
            if info.class_name is None:
                continue
            self._methods_by_name.setdefault(info.name, []).append(qualname)

    def _drain_classes(self) -> Dict[str, Set[str]]:
        """Kernel class name -> drain method names, subclasses included."""
        wanted: Dict[str, Set[str]] = {}
        for klass_name, method in _DRAIN_SEEDS:
            wanted.setdefault(klass_name, set()).add(method)
        # Subclasses inherit their base's drain surface.
        grew = True
        while grew:
            grew = False
            for qualname in sorted(self.project.classes):
                klass = self.project.classes[qualname]
                if klass.name in wanted:
                    continue
                for base in klass.bases:
                    resolved = self.project.expand(klass.module, base)
                    base_name = resolved.rsplit(".", 1)[-1]
                    if base_name in wanted:
                        wanted[klass.name] = set(wanted[base_name])
                        grew = True
                        break
        return wanted

    def _compute_hot(self) -> None:
        drains = self._drain_classes()
        kernel_seeds: Dict[str, str] = {}
        seeds: Dict[str, str] = {}
        for qualname in sorted(self.project.functions):
            info = self.project.functions[qualname]
            if info.class_name in drains and \
                    info.name in drains[info.class_name]:
                kernel_seeds[qualname] = "kernel drain method"
            if info.is_generator:
                seeds[qualname] = "simulation process (generator)"
        self.kernel_hot = self._closure(kernel_seeds, follow_names=False)
        seeds.update(self.kernel_hot)
        self.hot = self._closure(seeds, follow_names=True)

    def _closure(self, seeds: Dict[str, str],
                 follow_names: bool) -> Dict[str, str]:
        hot = dict(seeds)
        todo = sorted(seeds)
        while todo:
            caller = todo.pop()
            for callee in self.graph.callees(caller):
                if callee not in hot:
                    hot[callee] = "called from %s" % caller
                    todo.append(callee)
            if not follow_names:
                continue
            for external in self.graph.external.get(caller, []):
                name = external.rsplit(".", 1)[-1]
                if "." not in external or name in _CHA_STOPLIST:
                    continue
                for target in self._methods_by_name.get(name, []):
                    if target not in hot:
                        hot[target] = "method %s() called from %s" \
                            % (name, caller)
                        todo.append(target)
        return hot

    # -- collection discovery ----------------------------------------------

    def _collect_collections(self) -> None:
        for module_name in sorted(self.project.modules):
            module = self.project.modules[module_name]
            self._collect_module_level(module)
            self._collect_instance_attrs(module)

    def _collect_module_level(self, module: ModuleInfo) -> None:
        for node in module.tree.body:
            if isinstance(node, ast.Assign):
                targets, value = node.targets, node.value
            elif isinstance(node, ast.AnnAssign) and node.value is not None:
                targets, value = [node.target], node.value
            else:
                continue
            kind = self._container_kind(module, value)
            if kind is None:
                continue
            for target in targets:
                if isinstance(target, ast.Name):
                    key = (module.name, target.id)
                    if key not in self.collections:
                        self.collections[key] = TrackedCollection(
                            module, None, target.id, node, kind, None)

    def _collect_instance_attrs(self, module: ModuleInfo) -> None:
        # First pass: every ``self.attr = <container>`` assignment,
        # grouped per (class, attr).
        assigns: Dict[Tuple[str, str],
                      List[Tuple[FunctionInfo, ast.AST, str]]] = {}
        for key in sorted(module.functions):
            info = module.functions[key]
            if info.class_name is None:
                continue
            owner = "%s.%s" % (module.name, info.class_name)
            for node in _own_nodes(info.node):
                pairs: List[Tuple[ast.AST, ast.AST]] = []
                if isinstance(node, ast.Assign):
                    for target in node.targets:
                        # ``out, self._outbox = self._outbox, []`` —
                        # the swap-drain idiom re-inits the attribute.
                        if isinstance(target, ast.Tuple) and \
                                isinstance(node.value, ast.Tuple) and \
                                len(target.elts) == len(node.value.elts):
                            pairs.extend(zip(target.elts,
                                             node.value.elts))
                        else:
                            pairs.append((target, node.value))
                elif isinstance(node, ast.AnnAssign) and \
                        node.value is not None:
                    pairs.append((node.target, node.value))
                for target, value in pairs:
                    kind = self._container_kind(module, value)
                    if kind is None:
                        continue
                    if _is_self_attr(target):
                        assigns.setdefault((owner, target.attr), []) \
                            .append((info, node, kind))
        # Second pass: the ``__init__`` assignment (or the first one)
        # is the construction site; any other re-initialization is an
        # eviction choice and counts as a shrink.
        for key in sorted(assigns):
            sites = assigns[key]
            construct = None
            for info, node, kind in sites:
                if info.name == "__init__":
                    construct = (info, node, kind)
                    break
            if construct is None:
                construct = min(
                    sites, key=lambda s: (s[0].module.path,
                                          getattr(s[1], "lineno", 1)))
            info, node, kind = construct
            owner, attr = key
            collection = TrackedCollection(module, owner, attr, node,
                                           kind, info)
            for other_info, other_node, _kind in sites:
                if other_node is not node:
                    collection.shrinks.append(
                        UseSite(other_info, module, other_node, "reset"))
            self.collections[key] = collection

    def _container_kind(self, module: ModuleInfo,
                        value: ast.AST) -> Optional[str]:
        if isinstance(value, (ast.Dict, ast.DictComp)):
            return "dict"
        if isinstance(value, (ast.List, ast.ListComp)):
            return "list"
        if isinstance(value, (ast.Set, ast.SetComp)):
            return "set"
        if isinstance(value, ast.Call):
            dotted = _dotted(value.func)
            if dotted is not None:
                expanded = self.project.expand(module, dotted)
                kind = _CONTAINER_CONSTRUCTORS.get(expanded)
                if kind == "deque" and any(
                        kw.arg == "maxlen"
                        and not (isinstance(kw.value, ast.Constant)
                                 and kw.value.value is None)
                        for kw in value.keywords):
                    # A bounded ring: size is capped by construction,
                    # so neither growth nor scans over it are
                    # population-dimensioned.
                    return None
                return kind
        return None

    # -- use-site scan -----------------------------------------------------

    def _scan_functions(self) -> None:
        for module_name in sorted(self.project.modules):
            module = self.project.modules[module_name]
            for key in sorted(module.functions):
                self._scan_function(module.functions[key])

    def _scan_function(self, info: FunctionInfo) -> None:
        parents = _parent_map(info.node)
        aliases = self._collect_aliases(info)
        is_kernel = info.qualname in self.kernel_hot
        is_hot = is_kernel or info.qualname in self.hot
        for node in _own_nodes(info.node):
            in_loop = _in_loop(node, parents, info.node)
            self._scan_node(info, node, aliases, in_loop)
            if is_kernel:
                self._scan_kernel_alloc(info, node, in_loop)
            if is_hot:
                self._scan_rebuild(info, node, parents)
        # Nested defs (spawned closures, callbacks) belong lexically to
        # this function and are not FunctionInfo entries of their own;
        # their grow/shrink/scan sites count toward the same
        # collections, or an eviction hiding in a ``finally`` of a
        # spawned fetcher would be invisible.
        queue = [node for node in _own_nodes(info.node)
                 if isinstance(node, (ast.FunctionDef,
                                      ast.AsyncFunctionDef))]
        while queue:
            scope = queue.pop()
            nested_parents = _parent_map(scope)
            for node in _own_nodes(scope):
                if isinstance(node, (ast.FunctionDef,
                                     ast.AsyncFunctionDef)):
                    queue.append(node)
                    continue
                in_loop = _in_loop(node, nested_parents, scope)
                self._scan_node(info, node, aliases, in_loop)

    def _collect_aliases(self, info: FunctionInfo) \
            -> Dict[str, TrackedCollection]:
        """Locals bound to a tracked collection (one step, no transit)."""
        aliases: Dict[str, TrackedCollection] = {}
        for node in _own_nodes(info.node):
            if not (isinstance(node, ast.Assign)
                    and len(node.targets) == 1
                    and isinstance(node.targets[0], ast.Name)):
                continue
            resolved = self._resolve(info, {}, node.value)
            if resolved is not None:
                aliases[node.targets[0].id] = resolved
        return aliases

    def _scan_node(self, info: FunctionInfo, node: ast.AST,
                   aliases: Dict[str, TrackedCollection],
                   in_loop: bool) -> None:
        module = info.module
        if isinstance(node, ast.Call):
            func = node.func
            if isinstance(func, ast.Attribute):
                if func.attr in _GROW_METHODS:
                    collection = self._resolve(info, aliases, func.value)
                    if collection is not None:
                        site = UseSite(info, module, node, func.attr,
                                       in_loop)
                        collection.grows.append(site)
                        self._promote_from_payload(
                            collection, site, [func.value] + list(node.args))
                elif func.attr in _SHRINK_METHODS:
                    collection = self._resolve(info, aliases, func.value)
                    if collection is not None:
                        collection.shrinks.append(
                            UseSite(info, module, node, func.attr, in_loop))
            elif isinstance(func, ast.Name):
                self._scan_call_by_name(info, node, func, aliases, in_loop)
            dotted = _dotted(func)
            if dotted is not None:
                expanded = self.project.expand(module, dotted)
                if expanded in ("heapq.heappush", "heapq.heapreplace") \
                        and node.args:
                    collection = self._resolve(info, aliases, node.args[0])
                    if collection is not None:
                        site = UseSite(info, module, node, "heappush",
                                       in_loop)
                        collection.grows.append(site)
                        self._promote_from_payload(collection, site,
                                                   list(node.args))
                elif expanded == "heapq.heappop" and node.args:
                    collection = self._resolve(info, aliases, node.args[0])
                    if collection is not None:
                        collection.shrinks.append(
                            UseSite(info, module, node, "heappop", in_loop))
        elif isinstance(node, ast.Assign):
            # AugAssign subscripts (``d[k] += 1``) are excluded: on a
            # plain dict/list they update an existing slot and cannot
            # add one.
            for target in node.targets:
                if isinstance(target, ast.Subscript):
                    collection = self._resolve(info, aliases, target.value)
                    if collection is None:
                        continue
                    if isinstance(target.slice, ast.Slice) and \
                            target.slice.lower is None and \
                            target.slice.upper is None and \
                            target.slice.step is None:
                        # ``coll[:] = kept`` — the in-place prune
                        # idiom: an eviction choice, not growth.
                        collection.shrinks.append(
                            UseSite(info, module, node, "prune", in_loop))
                        continue
                    site = UseSite(info, module, node, "store", in_loop)
                    collection.grows.append(site)
                    self._promote_from_payload(
                        collection, site, [target.slice, node.value])
        elif isinstance(node, ast.Delete):
            for target in node.targets:
                if isinstance(target, ast.Subscript):
                    collection = self._resolve(info, aliases, target.value)
                    if collection is not None:
                        collection.shrinks.append(
                            UseSite(info, module, node, "del", in_loop))
        elif isinstance(node, ast.For):
            collection = self._resolve(info, aliases, node.iter)
            if collection is not None:
                collection.scans.append(
                    UseSite(info, module, node, "scan", in_loop))
        elif isinstance(node, (ast.ListComp, ast.SetComp, ast.DictComp,
                               ast.GeneratorExp)):
            for comp in node.generators:
                collection = self._resolve(info, aliases, comp.iter)
                if collection is not None:
                    collection.scans.append(
                        UseSite(info, module, node, "scan", in_loop))
        elif isinstance(node, ast.Compare):
            for op, comparator in zip(node.ops, node.comparators):
                if not isinstance(op, (ast.In, ast.NotIn)):
                    continue
                collection = self._resolve(info, aliases, comparator)
                if collection is not None:
                    collection.memberships.append(
                        UseSite(info, module, node, "membership", in_loop))

    def _scan_call_by_name(self, info: FunctionInfo, node: ast.Call,
                           func: ast.Name,
                           aliases: Dict[str, TrackedCollection],
                           in_loop: bool) -> None:
        if func.id not in _SORTISH_CALLS or not node.args:
            return
        collection = self._resolve(info, aliases, node.args[0])
        if collection is not None:
            collection.sorts.append(
                UseSite(info, info.module, node, func.id, in_loop))

    def _scan_kernel_alloc(self, info: FunctionInfo, node: ast.AST,
                           in_loop: bool) -> None:
        if not in_loop:
            return
        what: Optional[str] = None
        if isinstance(node, ast.Dict):
            what = "dict"
        elif isinstance(node, ast.List):
            what = "list"
        elif isinstance(node, ast.Set):
            what = "set"
        elif isinstance(node, (ast.ListComp, ast.SetComp, ast.DictComp,
                               ast.GeneratorExp)):
            what = "comprehension"
        elif isinstance(node, ast.Lambda):
            what = "lambda"
        elif isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            what = "closure"
        if what is not None:
            self.kernel_allocs.append(AllocSite(info, node, what))

    def _scan_rebuild(self, info: FunctionInfo, node: ast.AST,
                      parents: Dict[ast.AST, ast.AST]) -> None:
        if not isinstance(node, ast.Assign):
            return
        target_label = None
        for target in node.targets:
            if isinstance(target, ast.Name) and \
                    _CACHE_NAME_RE.search(target.id):
                target_label = target.id
            elif isinstance(target, ast.Attribute) and \
                    _CACHE_NAME_RE.search(target.attr):
                target_label = _dotted(target) or target.attr
        if target_label is None:
            return
        if not self._is_rebuild_value(node.value):
            return
        guarded = _invalidation_guarded(node, parents, info.node)
        self.rebuild_sites.append(
            RebuildSite(info, node, target_label, guarded))

    def _is_rebuild_value(self, value: ast.AST) -> bool:
        if isinstance(value, (ast.ListComp, ast.SetComp, ast.DictComp)):
            return True
        if isinstance(value, ast.Assign):  # chained a = b = rebuild()
            return self._is_rebuild_value(value.value)
        if isinstance(value, ast.Call):
            dotted = _dotted(value.func)
            if dotted is not None and \
                    _REBUILD_RE.search(dotted.rsplit(".", 1)[-1]):
                return True
        return False

    # -- receiver resolution -----------------------------------------------

    def _resolve(self, info: FunctionInfo,
                 aliases: Dict[str, TrackedCollection],
                 expr: ast.AST) -> Optional[TrackedCollection]:
        expr = _unwrap(expr)
        if isinstance(expr, ast.Name):
            alias = aliases.get(expr.id)
            if alias is not None:
                return alias
            if expr.id in info.params:
                return None
            return self.collections.get((info.module.name, expr.id))
        dotted = _dotted(expr)
        if dotted is None:
            return None
        parts = dotted.split(".")
        if parts[0] == "self" and len(parts) == 2 and \
                info.class_name is not None:
            return self._owned(info, parts[1])
        return None

    def _owned(self, info: FunctionInfo,
               attr: str) -> Optional[TrackedCollection]:
        """``self.<attr>`` resolved through project-known base classes."""
        klass = info.module.classes.get(info.class_name)
        seen: Set[str] = set()
        todo = [klass] if klass is not None else []
        while todo:
            current = todo.pop(0)
            if current.qualname in seen:
                continue
            seen.add(current.qualname)
            collection = self.collections.get((current.qualname, attr))
            if collection is not None:
                return collection
            for base in current.bases:
                resolved = self.project.expand(current.module, base)
                base_class = self.project.classes.get(resolved)
                if base_class is None:
                    base_class = current.module.classes.get(base)
                if base_class is not None:
                    todo.append(base_class)
        return None

    # -- dimension inference -----------------------------------------------

    def _promote_from_payload(self, collection: TrackedCollection,
                              site: UseSite,
                              payloads: List[ast.AST]) -> None:
        """Promote by the identifiers stored into the collection."""
        for payload in payloads:
            if payload is None:
                continue
            for leaf in ast.walk(payload):
                name: Optional[str] = None
                if isinstance(leaf, ast.Name):
                    name = leaf.id
                elif isinstance(leaf, ast.Attribute):
                    name = leaf.attr
                if name is None or name == "self":
                    continue
                dimension, word = _classify_identifier(name)
                if word is not None:
                    collection.promote(
                        dimension,
                        "stores %r-shaped values at %s" % (word,
                                                           site.where))

    def _infer_dimensions(self) -> None:
        for key in sorted(self.collections):
            collection = self.collections[key]
            dimension, word = _classify_identifier(collection.name)
            # Name-based promotion needs at least one runtime grow
            # site: a population-named mapping that is only ever filled
            # at construction time (``session_overrides = dict(...)``)
            # is sized by configuration, not by the arrival process.
            if word is not None and collection.grows:
                collection.promote(dimension,
                                   "name contains %r" % word)
            # Payload promotion already ran during the site scan.
            if not collection.shrinks:
                for site in collection.grows:
                    if site.function is not None and \
                            site.function.qualname in self.hot:
                        collection.promote(
                            POPULATION,
                            "grows per event at %s with no eviction "
                            "anywhere" % site.where)
                        break

    # -- lookups -----------------------------------------------------------

    def sorted_collections(self) -> List[TrackedCollection]:
        return [self.collections[key] for key in sorted(self.collections)]

    def is_hot(self, qualname: str) -> bool:
        return qualname in self.hot

    def __repr__(self) -> str:
        population = sum(1 for c in self.collections.values()
                         if c.dimension == POPULATION)
        return "<ScaleModel %d collection(s), %d population-dimensioned, " \
               "%d hot function(s)>" % (len(self.collections), population,
                                        len(self.hot))


def build_scale_model(paths: Iterable[str]) -> ScaleModel:
    """Parse ``paths`` and build the growth-dimension model."""
    return ScaleModel(build_project(paths))


# -- AST helpers -----------------------------------------------------------

def _own_nodes(scope: ast.AST):
    """Every node in ``scope``, not descending into nested defs."""
    todo = list(ast.iter_child_nodes(scope))
    while todo:
        node = todo.pop()
        yield node
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef,
                             ast.Lambda, ast.ClassDef)):
            continue
        todo.extend(ast.iter_child_nodes(node))


def _parent_map(scope: ast.AST) -> Dict[ast.AST, ast.AST]:
    parents: Dict[ast.AST, ast.AST] = {}
    todo = [scope]
    while todo:
        node = todo.pop()
        for child in ast.iter_child_nodes(node):
            parents[child] = node
            todo.append(child)
    return parents


def _in_loop(node: ast.AST, parents: Dict[ast.AST, ast.AST],
             stop: ast.AST) -> bool:
    """Is ``node`` (lexically) inside a loop or comprehension?"""
    current = parents.get(node)
    while current is not None and current is not stop:
        if isinstance(current, (ast.For, ast.While, ast.ListComp,
                                ast.SetComp, ast.DictComp,
                                ast.GeneratorExp)):
            return True
        current = parents.get(current)
    return False


def _invalidation_guarded(node: ast.AST, parents: Dict[ast.AST, ast.AST],
                          stop: ast.AST) -> bool:
    """Is ``node`` under a test shaped like an invalidation check?"""
    current = parents.get(node)
    while current is not None and current is not stop:
        if isinstance(current, (ast.If, ast.While)):
            if _is_invalidation_test(current.test):
                return True
        current = parents.get(current)
    return False


def _is_invalidation_test(test: ast.AST) -> bool:
    for node in ast.walk(test):
        if isinstance(node, ast.Compare):
            for op, comparator in zip(node.ops, node.comparators):
                if isinstance(op, (ast.Is, ast.IsNot)) and \
                        isinstance(comparator, ast.Constant) and \
                        comparator.value is None:
                    return True
        name: Optional[str] = None
        if isinstance(node, ast.Name):
            name = node.id
        elif isinstance(node, ast.Attribute):
            name = node.attr
        if name is not None and _INVALIDATION_RE.search(name):
            return True
    return False


def _unwrap(expr: ast.AST) -> ast.AST:
    """Peel transparent layers off a receiver/iterable expression."""
    while True:
        if isinstance(expr, ast.Subscript):
            expr = expr.value
        elif isinstance(expr, ast.Call) and \
                isinstance(expr.func, ast.Attribute) and \
                expr.func.attr in _TRANSPARENT_METHODS:
            expr = expr.func.value
        elif isinstance(expr, ast.Call) and \
                isinstance(expr.func, ast.Name) and \
                expr.func.id in _TRANSPARENT_CALLS and len(expr.args) == 1:
            expr = expr.args[0]
        elif isinstance(expr, (ast.ListComp, ast.SetComp,
                               ast.GeneratorExp)) and expr.generators:
            expr = expr.generators[0].iter
        else:
            return expr


def _is_self_attr(node: ast.AST) -> bool:
    return (isinstance(node, ast.Attribute)
            and isinstance(node.value, ast.Name)
            and node.value.id == "self")


def _dotted(node: ast.AST) -> Optional[str]:
    parts: List[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
        return ".".join(reversed(parts))
    return None
