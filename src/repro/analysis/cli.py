"""The simlint command line.

Usage::

    python -m repro.analysis [PATH ...] [--format text|json]
                             [--select R1,R4] [--disable R3]
                             [--list-rules]

Exit status: 0 when the tree is clean, 1 when findings were reported,
2 on usage errors — so CI can gate on it directly (see ``make check``).
With no paths, the installed ``repro`` package itself is linted.
"""

from __future__ import annotations

import argparse
import json
import os
import sys
from typing import List, Optional

from repro.analysis.core import Analyzer, Finding
from repro.analysis.rules import default_rules

__all__ = ["build_parser", "main", "run_analysis"]


def _default_target() -> str:
    """The repro package directory (lint ourselves by default)."""
    import repro

    return os.path.dirname(os.path.abspath(repro.__file__))


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro.analysis",
        description="simlint: determinism & sim-correctness static "
                    "analysis for the DES stack.")
    parser.add_argument("paths", nargs="*",
                        help="files or directories to lint (default: the "
                             "installed repro package)")
    parser.add_argument("--format", choices=("text", "json"),
                        default="text", help="output format")
    parser.add_argument("--select", default=None, metavar="RULES",
                        help="comma-separated rule codes/names to run "
                             "exclusively")
    parser.add_argument("--disable", default=None, metavar="RULES",
                        help="comma-separated rule codes/names to skip")
    parser.add_argument("--list-rules", action="store_true",
                        help="print the active rule set and exit")
    return parser


def _pick_rules(select: Optional[str], disable: Optional[str]):
    rules = default_rules()
    if select:
        wanted = {token.strip().lower() for token in select.split(",")
                  if token.strip()}
        rules = [r for r in rules
                 if {r.code.lower(), r.name.lower()} & wanted]
    if disable:
        dropped = {token.strip().lower() for token in disable.split(",")
                   if token.strip()}
        rules = [r for r in rules
                 if not ({r.code.lower(), r.name.lower()} & dropped)]
    return rules


def run_analysis(paths: List[str], rules=None) -> List[Finding]:
    """Lint ``paths`` (or the repro package when empty)."""
    return Analyzer(rules).analyze_paths(paths or [_default_target()])


def _render_text(findings: List[Finding], stream) -> None:
    for finding in findings:
        print(finding.format(), file=stream)
    noun = "finding" if len(findings) == 1 else "findings"
    print("simlint: %d %s" % (len(findings), noun), file=stream)


def _render_json(findings: List[Finding], stream) -> None:
    json.dump({"findings": [f.to_dict() for f in findings],
               "count": len(findings)}, stream, indent=2)
    print(file=stream)


def main(argv: Optional[List[str]] = None) -> int:
    """Entry point; returns the process exit code."""
    args = build_parser().parse_args(argv)
    rules = _pick_rules(args.select, args.disable)
    if args.list_rules:
        for rule in rules:
            doc = (sys.modules[type(rule).__module__].__doc__ or "")
            headline = doc.strip().splitlines()[0] if doc.strip() else ""
            print("%s  %-16s %s" % (rule.code, rule.name, headline))
        return 0
    if not rules:
        print("simlint: no rules selected", file=sys.stderr)
        return 2
    try:
        findings = run_analysis(args.paths, rules)
    except OSError as exc:
        print("simlint: cannot read %s: %s"
              % (exc.filename or "path", exc.strerror or exc),
              file=sys.stderr)
        return 2
    if args.format == "json":
        _render_json(findings, sys.stdout)
    else:
        _render_text(findings, sys.stdout)
    return 1 if findings else 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
