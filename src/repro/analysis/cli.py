"""The simlint command line.

Usage::

    python -m repro.analysis [PATH ...] [--deep] [--shard] [--scale]
                             [--shard-inventory FILE]
                             [--scale-inventory FILE]
                             [--format text|json|sarif]
                             [--select R1,R4] [--disable R3]
                             [--baseline FILE] [--write-baseline FILE]
                             [--list-rules] [--explain RULE]

``--deep`` adds the interprocedural pass (call graph + taint fixpoint,
rules R11-R14; see :mod:`repro.analysis.dataflow`) on top of the
per-file rules.  ``--shard`` adds the shard-affinity pass (ownership
rules R15-R19; see :mod:`repro.analysis.shard`), and
``--shard-inventory FILE`` additionally regenerates the shard-safety
inventory (``docs/shard-safety.md``) from the same model.  ``--scale``
adds the growth-dimension pass (complexity rules R22-R26; see
:mod:`repro.analysis.scale`), and ``--scale-inventory FILE``
regenerates the scale-readiness inventory (``docs/scale-readiness.md``)
from the same model.  ``--explain R22`` prints one rule's full
documentation — summary, rationale, fix pattern, suppression syntax —
and exits.  ``--format sarif`` emits SARIF 2.1.0 for CI ingestion.
``--baseline`` filters findings down to the ones *not* recorded in a
baseline file (the ratchet: legacy debt is absorbed, new findings
fail); ``--write-baseline`` regenerates that file.

Exit status: 0 when the tree is clean (or all findings are baselined),
1 when findings were reported, 2 on usage errors — so CI can gate on it
directly (see ``make check``).  With no paths, the installed ``repro``
package itself is linted.
"""

from __future__ import annotations

import argparse
import json
import os
import sys
from typing import List, Optional

from repro.analysis.baseline import (
    filter_new,
    load_baseline,
    render_baseline,
)
from repro.analysis.core import Analyzer, Finding
from repro.analysis.rules import default_rules
from repro.analysis.sarif import render_sarif

__all__ = ["build_parser", "main", "run_analysis", "run_deep_analysis",
           "run_shard_analysis", "run_scale_analysis"]


def _default_target() -> str:
    """The repro package directory (lint ourselves by default)."""
    import repro

    return os.path.dirname(os.path.abspath(repro.__file__))


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro.analysis",
        description="simlint: determinism & sim-correctness static "
                    "analysis for the DES stack.")
    parser.add_argument("paths", nargs="*",
                        help="files or directories to lint (default: the "
                             "installed repro package)")
    parser.add_argument("--deep", action="store_true",
                        help="also run the interprocedural dataflow pass "
                             "(rules R11-R14)")
    parser.add_argument("--shard", action="store_true",
                        help="also run the shard-affinity pass "
                             "(rules R15-R19)")
    parser.add_argument("--shard-inventory", default=None, metavar="FILE",
                        help="regenerate the shard-safety inventory at "
                             "FILE (implies --shard)")
    parser.add_argument("--scale", action="store_true",
                        help="also run the growth-dimension pass "
                             "(rules R22-R26)")
    parser.add_argument("--scale-inventory", default=None, metavar="FILE",
                        help="regenerate the scale-readiness inventory at "
                             "FILE (implies --scale)")
    parser.add_argument("--explain", default=None, metavar="RULE",
                        help="print one rule's documentation (e.g. "
                             "--explain R22) and exit")
    parser.add_argument("--format", choices=("text", "json", "sarif"),
                        default="text", help="output format")
    parser.add_argument("--select", default=None, metavar="RULES",
                        help="comma-separated rule codes/names to run "
                             "exclusively")
    parser.add_argument("--disable", default=None, metavar="RULES",
                        help="comma-separated rule codes/names to skip")
    parser.add_argument("--baseline", default=None, metavar="FILE",
                        help="report only findings not recorded in this "
                             "baseline file")
    parser.add_argument("--write-baseline", default=None, metavar="FILE",
                        help="write the run's findings as a new baseline "
                             "and exit 0")
    parser.add_argument("--list-rules", action="store_true",
                        help="print the active rule set and exit")
    return parser


def _filter_rules(rules, select: Optional[str], disable: Optional[str]):
    if select:
        wanted = {token.strip().lower() for token in select.split(",")
                  if token.strip()}
        rules = [r for r in rules
                 if {r.code.lower(), r.name.lower()} & wanted]
    if disable:
        dropped = {token.strip().lower() for token in disable.split(",")
                   if token.strip()}
        rules = [r for r in rules
                 if not ({r.code.lower(), r.name.lower()} & dropped)]
    return rules


def _pick_rules(select: Optional[str], disable: Optional[str]):
    return _filter_rules(default_rules(), select, disable)


def _pick_deep_rules(select: Optional[str], disable: Optional[str]):
    from repro.analysis.dataflow import deep_rules

    return _filter_rules(deep_rules(), select, disable)


def _pick_shard_rules(select: Optional[str], disable: Optional[str]):
    from repro.analysis.shard import shard_rules

    return _filter_rules(shard_rules(), select, disable)


def _pick_scale_rules(select: Optional[str], disable: Optional[str]):
    from repro.analysis.scale import scale_rules

    return _filter_rules(scale_rules(), select, disable)


def run_analysis(paths: List[str], rules=None) -> List[Finding]:
    """Lint ``paths`` (or the repro package when empty)."""
    return Analyzer(rules).analyze_paths(paths or [_default_target()])


def run_deep_analysis(paths: List[str], rules=None,
                      project=None) -> List[Finding]:
    """Run the interprocedural pass over ``paths``.

    ``project`` is an optional pre-built
    :class:`~repro.analysis.dataflow.symbols.ProjectModel`; the deep,
    shard and scale passes all ride the same symbol table, so callers
    running more than one pass parse the tree once and share it.
    """
    from repro.analysis.dataflow import analyze_project
    from repro.analysis.dataflow.taint import TaintEngine

    engine = None if project is None else TaintEngine(project).run()
    return analyze_project(paths or [_default_target()], rules=rules,
                           engine=engine)


def run_shard_analysis(paths: List[str], rules=None,
                       inventory: Optional[str] = None,
                       project=None) -> List[Finding]:
    """Run the shard-affinity pass; optionally write the inventory."""
    from repro.analysis.shard import analyze_shard, build_shard_model
    from repro.analysis.shard.model import ShardModel

    if project is None:
        model = build_shard_model(paths or [_default_target()])
    else:
        model = ShardModel(project)
    findings = analyze_shard(paths, rules=rules, model=model)
    if inventory:
        from repro.analysis.shard.inventory import write_inventory

        write_inventory(model, inventory)
    return findings


def run_scale_analysis(paths: List[str], rules=None,
                       inventory: Optional[str] = None,
                       project=None) -> List[Finding]:
    """Run the growth-dimension pass; optionally write the inventory."""
    from repro.analysis.scale import analyze_scale, build_scale_model
    from repro.analysis.scale.model import ScaleModel

    if project is None:
        model = build_scale_model(paths or [_default_target()])
    else:
        model = ScaleModel(project)
    findings = analyze_scale(paths, rules=rules, model=model)
    if inventory:
        from repro.analysis.scale.inventory import write_inventory

        write_inventory(model, inventory)
    return findings


def _render_text(findings: List[Finding], stream) -> None:
    for finding in findings:
        print(finding.format(), file=stream)
    noun = "finding" if len(findings) == 1 else "findings"
    print("simlint: %d %s" % (len(findings), noun), file=stream)


def _render_json(findings: List[Finding], stream) -> None:
    json.dump({"findings": [f.to_dict() for f in findings],
               "count": len(findings)}, stream, indent=2)
    print(file=stream)


def main(argv: Optional[List[str]] = None) -> int:
    """Entry point; returns the process exit code."""
    args = build_parser().parse_args(argv)
    if args.explain:
        from repro.analysis.explain import explain_rule

        try:
            print(explain_rule(args.explain))
        except KeyError:
            print("simlint: unknown rule %r (try --list-rules)"
                  % args.explain, file=sys.stderr)
            return 2
        return 0
    if args.shard_inventory:
        args.shard = True
    if args.scale_inventory:
        args.scale = True
    rules = _pick_rules(args.select, args.disable)
    deep = _pick_deep_rules(args.select, args.disable) if args.deep \
        else []
    shard = _pick_shard_rules(args.select, args.disable) if args.shard \
        else []
    scale = _pick_scale_rules(args.select, args.disable) if args.scale \
        else []
    if args.list_rules:
        for rule in rules:
            doc = (sys.modules[type(rule).__module__].__doc__ or "")
            headline = doc.strip().splitlines()[0] if doc.strip() else ""
            print("%s  %-16s %s" % (rule.code, rule.name, headline))
        for rule in deep + shard + scale:
            doc = (type(rule).__doc__ or "").strip()
            headline = doc.splitlines()[0] if doc else ""
            print("%s %-16s %s" % (rule.code, rule.name, headline))
        return 0
    if not rules and not deep and not shard and not scale:
        print("simlint: no rules selected", file=sys.stderr)
        return 2
    wants_deep = bool(args.deep and deep)
    wants_shard = bool(args.shard and (shard or args.shard_inventory))
    wants_scale = bool(args.scale and (scale or args.scale_inventory))
    try:
        findings = run_analysis(args.paths, rules) if rules else []
        merged = {(f.path, f.line, f.col, f.code, f.message)
                  for f in findings}
        project = None
        if wants_deep + wants_shard + wants_scale >= 2:
            # The project-model passes all start from the same parsed
            # symbol table; build it once instead of once per pass.
            from repro.analysis.dataflow.symbols import build_project

            project = build_project(args.paths or [_default_target()])

        def _fold(extra: List[Finding]) -> None:
            for finding in extra:
                key = (finding.path, finding.line, finding.col,
                       finding.code, finding.message)
                if key not in merged:
                    merged.add(key)
                    findings.append(finding)

        if wants_deep:
            _fold(run_deep_analysis(args.paths, deep, project=project))
        if wants_shard:
            _fold(run_shard_analysis(args.paths, shard,
                                     inventory=args.shard_inventory,
                                     project=project))
        if wants_scale:
            _fold(run_scale_analysis(args.paths, scale,
                                     inventory=args.scale_inventory,
                                     project=project))
        findings.sort(key=lambda f: f.sort_key)
    except OSError as exc:
        print("simlint: cannot read %s: %s"
              % (exc.filename or "path", exc.strerror or exc),
              file=sys.stderr)
        return 2
    if args.write_baseline:
        with open(args.write_baseline, "w", encoding="utf-8") as handle:
            handle.write(render_baseline(findings))
        print("simlint: wrote baseline of %d finding(s) to %s"
              % (len(findings), args.write_baseline))
        return 0
    if args.baseline:
        try:
            known = load_baseline(args.baseline)
        except (OSError, ValueError, KeyError, json.JSONDecodeError) as exc:
            print("simlint: cannot use baseline %s: %s"
                  % (args.baseline, exc), file=sys.stderr)
            return 2
        findings = filter_new(findings, known)
    if args.format == "json":
        _render_json(findings, sys.stdout)
    elif args.format == "sarif":
        sys.stdout.write(render_sarif(findings,
                                      rules + deep + shard + scale))
    else:
        _render_text(findings, sys.stdout)
    return 1 if findings else 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
