"""Structured rule documentation behind ``--explain R<id>``.

``repro analyze --explain R22`` prints one rule's full story — the
one-line summary the finding message compresses, why the rule exists,
the sanctioned fix pattern, and the exact suppression syntax — without
running any analysis.  The entries here are the narrative companions
to the machine-checkable rules; the authoritative reference prose
lives in ``docs/static_analysis.md`` and each rule module's docstring.

The table is keyed by code (``R22``) and by name
(``per-event-linear-scan``), case-insensitively, so both spellings a
finding line shows are accepted.  :func:`explain_rule` raises
``KeyError`` for anything else; the CLI turns that into exit status 2.
"""

from __future__ import annotations

from typing import Dict, List, NamedTuple

__all__ = ["RuleDoc", "RULE_DOCS", "explain_rule", "all_rule_codes"]


class RuleDoc(NamedTuple):
    """One rule's documentation record."""

    code: str
    name: str
    passname: str       # which flag enables it
    summary: str        # one line, matches --list-rules
    rationale: str      # why the pattern is a defect here
    fix: str            # the sanctioned remediation pattern
    example: str        # a suppression line with required prose


def _doc(code: str, name: str, passname: str, summary: str,
         rationale: str, fix: str, example: str) -> RuleDoc:
    return RuleDoc(code, name, passname, summary, rationale, fix,
                   example)


_DOCS: List[RuleDoc] = [
    _doc(
        "E0", "parse-error", "(always on)",
        "a file under analysis does not parse.",
        "Every pass needs an AST; a syntax error hides every other "
        "finding in the file, so it is reported as a finding itself "
        "rather than crashing the run.",
        "Fix the syntax error.  E0 cannot be suppressed.",
        "(not suppressible)"),
    _doc(
        "R1", "global-random", "per-file",
        "every random draw must come from a RandomStreams stream.",
        "The global `random` module shares one hidden generator across "
        "the process: any new caller perturbs every existing "
        "consumer's draws, and a literal-seeded private Random(0) "
        "gives every component correlated draws that cannot be varied "
        "per run.",
        "Take an injected repro.simulation.randomness.RandomStreams "
        "stream (`streams.stream(\"component\")`) and draw from it.",
        "rng = random.Random(0)  # simlint: disable=R1 test fixture, "
        "never reaches sim state"),
    _doc(
        "R2", "wall-clock", "per-file",
        "simulated time must never come from the wall clock.",
        "A discrete-event model has exactly one clock, sim.now.  "
        "time.time()/datetime.now() in model code couples results to "
        "host speed — the cardinal reproducibility sin.",
        "Use sim.now inside the model; wall-clock reads belong only "
        "in harness code reporting real elapsed time.",
        "t0 = time.time()  # simlint: disable=R2 harness wall-time "
        "report only"),
    _doc(
        "R3", "set-iteration", "per-file",
        "never iterate a set where order can reach the event queue.",
        "Set order depends on hash values, which differ per process "
        "start; any set iteration that schedules events or draws "
        "randoms destroys run-to-run reproducibility.  list() does "
        "not help — only sorted() or an insertion-ordered dict does.",
        "Iterate sorted(the_set), or replace the set with a dict used "
        "as an ordered set (`d[x] = None`).",
        "for h in hosts:  # simlint: disable=R3 hosts is "
        "sorted-on-insert upstream"),
    _doc(
        "R4", "lost-event", "per-file",
        "an event that is neither yielded nor stored is lost.",
        "`self.sim.timeout(q)` as a bare statement schedules a "
        "timeout nobody observes: the process continues at the same "
        "instant and the model silently loses time.  The most common "
        "DES typo; it never raises.",
        "Yield the event (`yield sim.timeout(q)`), store it, or "
        "compose it with all_of/any_of.",
        "sim.timeout(0)  # simlint: disable=R4 deliberate queue-depth "
        "probe, result unused"),
    _doc(
        "R5", "blocking-call", "per-file",
        "simulation processes must not block the host.",
        "A process is a generator resumed by the event loop; "
        "time.sleep() stalls the whole simulation without advancing "
        "sim.now, and blocking I/O couples the run to the outside "
        "world.",
        "Replace sleeps with `yield sim.timeout(...)`; move I/O out "
        "of process bodies into harness code.",
        "time.sleep(0.1)  # simlint: disable=R5 demo pacing in "
        "example script, not a model"),
    _doc(
        "R6", "float-time-eq", "per-file",
        "float simulation time must not be compared with ==.",
        "Timestamps are floats accumulated through arithmetic; two "
        "logically simultaneous times routinely differ in the last "
        "ulp, so == works on one machine and silently fails on "
        "another.",
        "Compare with an epsilon (`abs(a - b) <= EPS`) or let the "
        "kernel's event ordering make the decision.",
        "if t == deadline:  # simlint: disable=R6 deadline is copied "
        "from t, bit-identical by construction"),
    _doc(
        "R7", "mutable-default", "per-file",
        "mutable default arguments leak state between simulation runs.",
        "A default like `results=[]` is evaluated once at import and "
        "shared by every call — the second run sees the first run's "
        "residue, which is fatal and invisible for a stack whose "
        "claim is seed-identical replay.",
        "Default to None and allocate inside the function.",
        "def run(self, out=CACHE):  # simlint: disable=R7 "
        "module-constant sentinel, never mutated"),
    _doc(
        "R8", "heap-key", "per-file",
        "heap entries must have a total order.",
        "heapq falls through to comparing payloads when leading tuple "
        "elements tie; `(when, event)` works until two events share a "
        "timestamp, then raises TypeError mid-run or orders by id() "
        "nondeterministically.",
        "Push `(time, priority, monotonic_id, payload)` — a unique "
        "integer tie-breaker before the payload, as the kernel queue "
        "does.",
        "heappush(q, (t, job))  # simlint: disable=R8 job is an int "
        "rank, totally ordered"),
    _doc(
        "R9", "bare-print", "per-file",
        "model code must not print; report through tracer/metrics.",
        "print() bypasses the tracer and metrics registry, "
        "interleaves arbitrarily with harness output, and tempts "
        "callers into parsing stdout.",
        "Emit a span/instant/counter, or return the value; only CLI "
        "front ends and the report formatter write to stdout.",
        "print(table)  # simlint: disable=R9 CLI front end, stdout "
        "is the product"),
    _doc(
        "R10", "pool-size", "per-file",
        "worker count and worker identity must never influence "
        "results.",
        "The replication runner fans worlds across a process pool; "
        "the moment a seed or loop bound derives from cpu_count()/"
        "getpid(), workers=1 and workers=N diverge and every "
        "determinism guarantee is void.",
        "Derive everything from the root seed; size pools only in "
        "harness code with a suppression.",
        "n = os.cpu_count()  # simlint: disable=R10 harness pool "
        "sizing only, never reaches seeds"),
    _doc(
        "R11", "tainted-sim-state", "--deep",
        "host nondeterminism flowing into sim state (cross-function).",
        "time.time()/os.environ/hash() values that travel through "
        "helper returns into event payloads or model attributes make "
        "two same-seed runs diverge, even when the read and the write "
        "are in different functions.",
        "Cut the flow: derive the value from sim.now, the root seed, "
        "or configuration instead.",
        "stamp = self._host_id()  # simlint: disable=R11 diagnostic "
        "label only, never ordered on"),
    _doc(
        "R12", "rng-stream-escape", "--deep",
        "a named RNG stream re-seeded or forked non-derivably.",
        "RandomStreams guarantees per-name independence only while "
        "streams are derived through its API; re-seeding one from "
        "arbitrary data or aliasing it out re-couples draws across "
        "components.",
        "Always obtain streams via streams.stream(name) and never "
        "call .seed() on one.",
        "s.seed(n)  # simlint: disable=R12 n is itself derived from "
        "the root seed upstream"),
    _doc(
        "R13", "helper-event-discarded", "--deep",
        "discarding the Event returned (transitively) by a helper.",
        "A helper that returns sim.timeout(...)'s event is an R4 "
        "hazard one call away: invoking it as a bare statement loses "
        "the event just as surely, and the per-file rule cannot see "
        "it.",
        "Yield or store the helper's return value; rename helpers "
        "that intentionally fire-and-forget so they return None.",
        "self._kick()  # simlint: disable=R13 _kick schedules via "
        "call_at internally, return is advisory"),
    _doc(
        "R14", "unordered-key-taint", "--deep",
        "hash/filesystem iteration order reaching keys or output.",
        "os.listdir()/glob() order and set/dict-over-hash order vary "
        "across hosts; when such an ordering reaches event keys or "
        "artifact rows, byte-identical output is impossible.",
        "sorted() at the source, before the order can propagate.",
        "names = os.listdir(d)  # simlint: disable=R14 sorted() two "
        "lines below before use"),
    _doc(
        "R15", "process-global-mutable-state", "--shard",
        "a module/class-level mutable that is written at runtime.",
        "Shards of one world run in separate processes; state hiding "
        "in module globals silently diverges between them and between "
        "consecutive runs in one process.",
        "Move the state onto an object owned by one shard (usually "
        "the Simulation or a component keyed by it).",
        "_REGISTRY: List[...] = []  # simlint: disable=R15 "
        "import-time append-only plugin registry"),
    _doc(
        "R16", "cross-entity-direct-mutation", "--shard",
        "host-family code mutating a site-family object, or back.",
        "The shard partition follows the host/site entity families; "
        "a direct attribute write across that line bypasses the "
        "message channel and breaks the partition's determinism "
        "contract.",
        "Send a message (or call a method on the owning side) instead "
        "of reaching into the other family's attributes.",
        "site.load = x  # simlint: disable=R16 single-shard "
        "configuration phase, before the clock starts"),
    _doc(
        "R17", "unkeyed-process-cache", "--shard",
        "memo state whose lifetime is the process, not a simulation.",
        "A cache keyed only by input values survives across "
        "simulations in one process; the second run hits entries the "
        "first run warmed, so workers=1 vs workers=N (fresh "
        "processes) diverge.",
        "Key the cache by the owning Simulation (or store it on one).",
        "_memo = {}  # simlint: disable=R17 pure function of inputs, "
        "value identity never observed"),
    _doc(
        "R18", "non-mergeable-accumulator", "--shard",
        "a sample-taking stats class without a deterministic merge.",
        "Per-shard statistics must merge into the single-world answer "
        "after the run; an accumulator with no merge() forces "
        "order-dependent recombination or silent dropping.",
        "Implement merge(other) with an order-independent "
        "formulation, as the t-digest and counter classes do.",
        "class Peak:  # simlint: disable=R18 max() is trivially "
        "merge-order-independent"),
    _doc(
        "R19", "shared-event-queue-escape", "--shard",
        "events pushed onto a timeline the caller does not own.",
        "Scheduling onto another shard's kernel bypasses the stamped "
        "channel; the event lands in a different barrier round on "
        "every run.",
        "Route cross-shard work through ShardWorld.send().",
        "other.sim.call_at(t, f)  # simlint: disable=R19 both worlds "
        "verified same-shard by the caller"),
    _doc(
        "R20", "unbounded-collector", "per-file",
        "streaming collectors must make a retention choice.",
        "A TimeSeriesMonitor with neither window= nor max_samples= "
        "keeps every sample forever — the classic slow leak invisible "
        "at paper scale and fatal on steady-state runs.",
        "Pass a retention bound, or an explicit window=None to state "
        "that full history is the product.",
        "mon = TimeSeriesMonitor(sim)  # simlint: disable=R20 "
        "fixture asserts on full history"),
    _doc(
        "R21", "cross-shard-access", "per-file",
        "cross-shard kernel access must go through the channel API.",
        "Reaching through a world handle (`world.sim.call_at(...)`) "
        "mutates a shard's queue without a stamp; the mutation's "
        "effect depends on which barrier round carries it.",
        "Use ShardWorld.send()/on_message(); read-only "
        "`.sim.now`/`.sim.peek()` stays allowed.",
        "world.sim.schedule(e)  # simlint: disable=R21 single-shard "
        "unit test, no barrier in play"),
    _doc(
        "R22", "per-event-linear-scan", "--scale",
        "O(population) iteration inside per-event code.",
        "A loop or comprehension over a per-session-dimensioned "
        "collection inside the per-event hot set (simulation "
        "processes, kernel drains, and their call closure) does O(n) "
        "work per event — O(n^2) per scenario.  At a million sessions "
        "that is the difference between minutes and weeks.",
        "Index the lookup (dict keyed by what the scan searches for) "
        "or maintain the derived quantity incrementally (running "
        "totals, per-key buckets).  The sanctioned examples: "
        "VirtualMachineMonitor's name index and resident-memory "
        "running total.",
        "for vm in self.vms:  # simlint: disable=R22 teardown path, "
        "runs once per scenario not per event"),
    _doc(
        "R23", "unbounded-growth-container", "--scale",
        "population state that grows per event and is never evicted.",
        "A collection that gains an entry on a hot path and has no "
        "shrink site anywhere in the tree holds memory proportional "
        "to total sessions processed.  Generalizes R20 from obs "
        "collectors to arbitrary model state: registries, logs, "
        "per-key memo dicts.",
        "Evict on completion (delete the key when the session/VM "
        "ends), bound the container (deque(maxlen=...) is recognised "
        "as bounded), or stream aggregates instead of retaining raw "
        "entries.",
        "self.log: List[Transfer] = []  # simlint: disable=R23 "
        "experiment-lifetime artifact, sized by the scenario not the "
        "steady state"),
    _doc(
        "R24", "quadratic-membership", "--scale",
        "linear membership probes and sorted passes over population.",
        "`x in population_list` is a linear scan per test — run once "
        "per session it is quadratic in the population.  Likewise "
        "sorted()/min()/max() over a population collection inside a "
        "loop repeats a full ordered pass per iteration.",
        "Key membership as a dict/set (an insertion-ordered dict "
        "preserves determinism where a set would not); hoist ordered "
        "passes out of loops or track the extremum incrementally.",
        "if name in self._names:  # simlint: disable=R24 list is "
        "capped at 8 by admission control above"),
    _doc(
        "R25", "per-event-allocation", "--scale",
        "fresh containers/closures built inside kernel drain loops.",
        "The kernel's drain loops (step/_run_fast and the "
        "succeed/fail/_resume chain) execute once per event — the "
        "single hottest code in the system.  A dict/list/set display, "
        "comprehension, lambda or nested def inside one of their "
        "loops costs an allocation per drained event.",
        "Hoist the allocation out of the loop, reuse a scratch "
        "object, or restructure so the container is built once per "
        "call, not per iteration.",
        "errs = []  # simlint: disable=R25 only reachable on the "
        "failure path, empty in steady state"),
    _doc(
        "R26", "rebuild-in-hot-path", "--scale",
        "memoized structures recomputed per event, not per epoch.",
        "A cache/memo-named structure rebuilt from scratch "
        "(comprehension or refill/rebuild/recompute call) on every "
        "invocation of a hot function does the work memoization was "
        "meant to save.  The cache must be rebuilt at most once per "
        "invalidation epoch.",
        "Guard the rebuild: `if self._cache is None: self._cache = "
        "self._refill()`, invalidating (set to None, or bump an "
        "epoch counter) only where the inputs change — the "
        "FlowEngine._allocate/_refill pair is the sanctioned example.",
        "self._view = self._rebuild()  # simlint: disable=R26 inputs "
        "change on every call by construction, nothing to memoize"),
]

#: code -> doc and name -> doc, both lower-cased.  Filled once at
#: import, read-only afterwards.  # simlint: disable-file=R15
RULE_DOCS: Dict[str, RuleDoc] = {}
for _entry in _DOCS:
    RULE_DOCS[_entry.code.lower()] = _entry
    RULE_DOCS[_entry.name.lower()] = _entry


def all_rule_codes() -> List[str]:
    """Every documented code, R-number order (E0 first)."""
    seen = []
    for entry in _DOCS:
        if entry.code not in seen:
            seen.append(entry.code)
    return seen


def explain_rule(rule: str) -> str:
    """The full documentation text for ``rule`` (code or name).

    Raises ``KeyError`` when the rule is unknown.
    """
    doc = RULE_DOCS[rule.strip().lower()]
    lines = [
        "%s  %s  [%s pass]" % (doc.code, doc.name, doc.passname),
        "",
        "Summary:",
        "  " + doc.summary,
        "",
        "Why it matters:",
        "  " + doc.rationale,
        "",
        "Fix pattern:",
        "  " + doc.fix,
        "",
        "Suppression:",
        "  append `# simlint: disable=%s <why it is safe>` to the "
        "line," % doc.code,
        "  or `# simlint: disable-file=%s <why>` anywhere for the "
        "whole file;" % doc.code,
        "  the trailing prose is required and should say why, e.g.:",
        "    " + doc.example,
        "",
        "See: docs/static_analysis.md",
    ]
    return "\n".join(lines)
