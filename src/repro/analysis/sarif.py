"""SARIF 2.1.0 export for simlint findings.

SARIF (Static Analysis Results Interchange Format) is the OASIS
standard CI systems ingest natively (GitHub code scanning, Azure
DevOps, VS Code SARIF viewers).  :func:`to_sarif` renders a finding
list as one SARIF ``run``; :func:`findings_from_sarif` parses it back,
which the round-trip test uses to prove no information is lost.

Only the stable core of the format is emitted — tool metadata, rule
metadata, and one ``result`` per finding with a physical location —
keeping the document small and deterministic (keys sorted by the JSON
encoder, findings pre-sorted by the analyzer).
"""

from __future__ import annotations

import json
from typing import Dict, Iterable, List, Optional

from repro.analysis.core import Finding

__all__ = ["SARIF_VERSION", "SARIF_SCHEMA", "to_sarif", "render_sarif",
           "findings_from_sarif"]

SARIF_VERSION = "2.1.0"
SARIF_SCHEMA = ("https://raw.githubusercontent.com/oasis-tcs/"
                "sarif-spec/master/Schemata/sarif-schema-2.1.0.json")

#: Tool name advertised in the SARIF driver block.
_TOOL_NAME = "simlint"


def _rule_metadata(findings: Iterable[Finding],
                   rules: Optional[Iterable] = None) -> List[Dict]:
    """One reportingDescriptor per rule, sorted by id.

    ``rules`` may carry Rule/DeepRule instances for richer metadata;
    rules only seen through findings fall back to code + name.
    """
    descriptors: Dict[str, Dict] = {}
    if rules is not None:
        for rule in rules:
            doc = (type(rule).__doc__ or "").strip().splitlines()
            descriptors[rule.code] = {
                "id": rule.code,
                "name": rule.name,
                "shortDescription": {
                    "text": doc[0] if doc else rule.name},
            }
    for finding in findings:
        descriptors.setdefault(finding.code, {
            "id": finding.code,
            "name": finding.name,
            "shortDescription": {"text": finding.name},
        })
    return [descriptors[code]
            for code in sorted(descriptors,
                               key=lambda c: (len(c), c))]


def to_sarif(findings: List[Finding],
             rules: Optional[Iterable] = None) -> Dict:
    """The findings as a SARIF 2.1.0 document (a JSON-ready dict)."""
    rule_meta = _rule_metadata(findings, rules)
    rule_index = {meta["id"]: i for i, meta in enumerate(rule_meta)}
    results = []
    for finding in findings:
        results.append({
            "ruleId": finding.code,
            "ruleIndex": rule_index[finding.code],
            "level": "error" if finding.code == "E0" else "warning",
            "message": {"text": finding.message},
            "locations": [{
                "physicalLocation": {
                    "artifactLocation": {"uri": finding.path},
                    "region": {
                        "startLine": finding.line,
                        "startColumn": finding.col,
                    },
                },
            }],
            # simlint extension: the rule slug, so a round trip loses
            # nothing (SARIF has no standard slot for it per-result).
            "properties": {"name": finding.name},
        })
    return {
        "$schema": SARIF_SCHEMA,
        "version": SARIF_VERSION,
        "runs": [{
            "tool": {
                "driver": {
                    "name": _TOOL_NAME,
                    "informationUri":
                        "https://example.invalid/docs/static_analysis",
                    "rules": rule_meta,
                },
            },
            "results": results,
        }],
    }


def render_sarif(findings: List[Finding],
                 rules: Optional[Iterable] = None) -> str:
    """The SARIF document as deterministic, pretty-printed JSON."""
    return json.dumps(to_sarif(findings, rules), indent=2,
                      sort_keys=True) + "\n"


def findings_from_sarif(document: Dict) -> List[Finding]:
    """Parse a simlint SARIF document back into Finding objects."""
    findings: List[Finding] = []
    for run in document.get("runs", ()):
        for result in run.get("results", ()):
            location = result["locations"][0]["physicalLocation"]
            region = location.get("region", {})
            findings.append(Finding(
                location["artifactLocation"]["uri"],
                int(region.get("startLine", 1)),
                int(region.get("startColumn", 1)),
                result["ruleId"],
                result.get("properties", {}).get("name",
                                                 result["ruleId"]),
                result["message"]["text"]))
    findings.sort(key=lambda f: f.sort_key)
    return findings
