"""Operating-system model, used for both host and guest operating systems.

* :class:`~repro.guestos.interface.MachineInterface` — what an OS needs
  from the machine beneath it (CPU execution, I/O cost model, root file
  system).  Two implementations exist: the physical host
  (:class:`~repro.guestos.interface.PhysicalHost`) and the virtual
  machine (:class:`repro.vmm.virtual_machine.VirtualMachine`).
* :class:`~repro.guestos.kernel.OperatingSystem` — mounts, process
  execution with user/sys accounting, and the boot sequence whose cost
  dominates Table 2's VM-reboot rows.
"""

from repro.guestos.costs import OsCosts
from repro.guestos.interface import MachineInterface, PhysicalHost
from repro.guestos.kernel import OperatingSystem, ProcessResult
from repro.guestos.profile import GuestOsProfile

__all__ = [
    "GuestOsProfile",
    "MachineInterface",
    "OperatingSystem",
    "OsCosts",
    "PhysicalHost",
    "ProcessResult",
]
