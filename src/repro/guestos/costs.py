"""Native operating-system cost constants.

These are the *physical-machine* costs; the VMM multiplies them (see
:class:`repro.vmm.costs.VmmCosts`) because kernel code inside a guest
executes privileged instructions that must be trapped and emulated.
Values approximate a 2001-era Linux on a Pentium III.
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import lru_cache

from repro.simulation.kernel import SimulationError

__all__ = ["OsCosts"]


@dataclass(frozen=True)
class OsCosts:
    """Per-event native kernel costs, in seconds (or seconds/byte)."""

    #: One system call, entry to exit.
    syscall: float = 1.5e-6
    #: Kernel CPU per byte moved through the file-system/IO path.
    io_cpu_per_byte: float = 6e-9
    #: One process context switch.
    context_switch: float = 5e-6
    #: Scheduler timeslice (Linux 2.4's 100 Hz tick era).
    quantum: float = 0.01

    def __post_init__(self):
        if min(self.syscall, self.io_cpu_per_byte, self.context_switch) < 0:
            raise SimulationError("costs must be non-negative")
        if self.quantum <= 0:
            raise SimulationError("quantum must be positive")

    @lru_cache(maxsize=1024)
    def io_sys_seconds(self, nbytes: int, operations: int) -> float:
        """Native kernel CPU consumed by an I/O request stream.

        Memoized: workloads issue the same few (nbytes, operations)
        shapes millions of times across replications, and the frozen
        dataclass is hashable.  Bounded so sweeping many cost tables
        through one process cannot grow it without limit.
        """
        return operations * self.syscall + nbytes * self.io_cpu_per_byte
