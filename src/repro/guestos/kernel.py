"""The operating system: mounts, processes, accounting and boot.

One :class:`OperatingSystem` instance serves as either a host OS (on a
:class:`~repro.guestos.interface.PhysicalHost`) or a guest OS (on a
:class:`repro.vmm.virtual_machine.VirtualMachine`) — the machine
interface hides the difference, which is the whole point of classic
virtual machines.
"""

from __future__ import annotations

import random
from typing import Dict, List, Optional, Tuple

from repro.guestos.interface import MachineInterface
from repro.guestos.profile import GuestOsProfile
from repro.simulation.kernel import SimulationError
from repro.storage.base import FileSystem, StorageError, block_span
from repro.workloads.applications import (
    Application,
    ComputePhase,
    IoPhase,
    KernelEventRates,
)

__all__ = ["OperatingSystem", "ProcessResult"]

#: The file standing in for everything a cold boot reads (kernel, /etc,
#: shared libraries, daemon binaries).
_BOOT_FILE = "/boot/system"


class ProcessResult:
    """Accounting for one completed process, as ``time(1)`` would report.

    ``guest_user`` is the identity *inside* this OS — for a VM guest it
    is "completely decoupled from the identities of its VM host"
    (Section 3.1), so it may freely be ``root``.
    """

    def __init__(self, name: str, user_time: float, sys_time: float,
                 started_at: float, finished_at: float, io_bytes: int,
                 guest_user: str = "root"):
        self.name = name
        self.user_time = user_time
        self.sys_time = sys_time
        self.started_at = started_at
        self.finished_at = finished_at
        self.io_bytes = io_bytes
        self.guest_user = guest_user

    @property
    def cpu_time(self) -> float:
        """user + sys, the quantity Table 1 reports."""
        return self.user_time + self.sys_time

    @property
    def wall_time(self) -> float:
        """Elapsed real time."""
        return self.finished_at - self.started_at

    def __repr__(self) -> str:
        return ("<ProcessResult %s user=%.1fs sys=%.1fs wall=%.1fs>"
                % (self.name, self.user_time, self.sys_time, self.wall_time))


class OperatingSystem:
    """Mount table + process execution + boot sequence."""

    def __init__(self, iface: MachineInterface, name: str = "linux",
                 profile: Optional[GuestOsProfile] = None,
                 rng: Optional[random.Random] = None):
        self.sim = iface.sim
        self.iface = iface
        self.name = name
        self.profile = profile or GuestOsProfile()
        self.rng = rng if rng is not None \
            else self.sim.streams.stream("os/" + iface.name)
        self._mounts: Dict[str, FileSystem] = {}
        self.booted = False
        self.boot_duration: Optional[float] = None
        self.results: List[ProcessResult] = []  # simlint: disable=R23  per-VM instance holds its own guest results; size follows the VM's jobs, freed with the VM

    # -- mount table ----------------------------------------------------------

    def mount(self, point: str, fs: FileSystem) -> None:
        """Attach a file system at ``point`` (longest-prefix resolution)."""
        if not point.startswith("/"):
            raise SimulationError("mount point must be absolute")
        if point in self._mounts:
            raise SimulationError("%s is already mounted" % point)
        self._mounts[point] = fs

    def unmount(self, point: str) -> None:
        """Detach a mounted file system."""
        if point not in self._mounts:
            raise SimulationError("%s is not mounted" % point)
        del self._mounts[point]

    @property
    def mounts(self) -> Dict[str, FileSystem]:
        """Snapshot of the mount table."""
        return dict(self._mounts)

    def resolve(self, path: str) -> Tuple[FileSystem, str]:
        """Find the file system serving ``path``."""
        best = ""
        for point in self._mounts:
            if path == point or path.startswith(point.rstrip("/") + "/") \
                    or point == "/":
                if len(point) > len(best):
                    best = point
        if not best:
            raise StorageError("no file system mounted for %s" % path)
        return self._mounts[best], path

    def provision_file(self, path: str, size: int) -> None:
        """Create a file's metadata (used to stock images and inputs)."""
        fs, name = self.resolve(path)
        fs.create(name, size)

    # -- boot / shutdown --------------------------------------------------------

    def install(self) -> None:
        """Lay down the OS's own files (run once when an image is built)."""
        fs, name = self.resolve(_BOOT_FILE)
        fs.create(name, self.profile.boot_footprint_bytes)

    def boot(self):
        """Process generator: cold boot (kernel load + init scripts).

        The init-script phase issues thousands of small scattered reads —
        on a cold disk image this dominates; on a warm one (e.g. just
        copied through the host's buffer cache) it is much cheaper.
        """
        if self.booted:
            raise SimulationError("%s is already booted" % self.name)
        profile = self.profile
        start = self.sim.now
        fs, name = self.resolve(_BOOT_FILE)
        jitter = 1.0 + self.rng.uniform(-profile.boot_jitter,
                                        profile.boot_jitter)

        # Phase 1: kernel + initrd, one big sequential read.
        yield from fs.read(name, 0, profile.kernel_read_bytes,
                           sequential=True)
        # Phase 2: init scripts - scattered small reads and script CPU,
        # interleaved (batched into groups to bound event counts).
        footprint = profile.boot_footprint_bytes
        reads = int(profile.scattered_reads * jitter)
        read_size = profile.scattered_read_bytes
        groups = 40
        rates = KernelEventRates(syscalls_per_sec=2500.0,
                                 pagefaults_per_sec=500.0)
        per_group_user = profile.boot_cpu_user * jitter / groups
        per_group_sys = profile.boot_cpu_sys * jitter / groups
        for _group in range(groups):
            for _i in range(max(1, reads // groups)):
                offset = self.rng.randrange(
                    0, max(1, footprint - read_size))
                yield from fs.read(name, offset, read_size,
                                   sequential=False)
            yield from self.iface.run_compute(
                "init", per_group_user, per_group_sys, rates)
        self.booted = True
        self.boot_duration = self.sim.now - start
        return self.boot_duration

    def mark_booted(self) -> None:
        """Declare the OS running without a boot (restored from memory)."""
        self.booted = True

    def resume(self):
        """Process generator: wake from a restored memory image."""
        yield from self.iface.run_compute(
            "resume", self.profile.resume_cpu * 0.3,
            self.profile.resume_cpu * 0.7,
            KernelEventRates(syscalls_per_sec=1000.0))
        self.booted = True

    def shutdown(self):
        """Process generator: orderly shutdown."""
        if not self.booted:
            raise SimulationError("%s is not booted" % self.name)
        yield from self.iface.run_compute(
            "shutdown", self.profile.shutdown_cpu * 0.3,
            self.profile.shutdown_cpu * 0.7,
            KernelEventRates(syscalls_per_sec=1500.0))
        self.booted = False

    # -- process execution ---------------------------------------------------------

    def run_application(self, app: Application,
                        pname: Optional[str] = None,
                        provision_inputs: bool = True,
                        guest_user: str = "root"):
        """Process generator: run an application to completion.

        Returns a :class:`ProcessResult` with user/sys/wall accounting —
        the numbers Table 1 and Figure 1 are made of.  ``guest_user``
        is the in-guest identity; on a dedicated VM even untrusted code
        may run as root (Section 2.2, administrator privileges).
        """
        if not self.booted:
            raise SimulationError("%s is not booted" % self.name)
        pname = pname or app.name
        if provision_inputs:
            for path, size in app.input_files.items():
                fs, name = self.resolve(path)
                if not fs.exists(name):
                    fs.create(name, size)
        started = self.sim.now
        user_time = 0.0
        sys_time = 0.0
        io_bytes = 0
        for phase in app.phases:
            if isinstance(phase, ComputePhase):
                user, sys = yield from self.iface.run_compute(
                    pname, phase.user_seconds, phase.sys_seconds,
                    phase.rates)
                user_time += user
                sys_time += sys
            elif isinstance(phase, IoPhase):
                fs, name = self.resolve(phase.path)
                if phase.write:
                    yield from fs.write(name, phase.offset, phase.nbytes,
                                        sequential=phase.sequential)
                else:
                    if not fs.exists(name):
                        fs.create(name, phase.offset + phase.nbytes)
                    yield from fs.read(name, phase.offset, phase.nbytes,
                                       sequential=phase.sequential)
                operations = len(block_span(phase.offset, phase.nbytes,
                                            fs.block_size)) or 1
                native_sys = self.iface.io_sys_seconds(phase.nbytes,
                                                       operations)
                _user, sys = yield from self.iface.run_compute(
                    pname, 0.0, native_sys,
                    KernelEventRates(syscalls_per_sec=0.0))
                sys_time += sys
                io_bytes += phase.nbytes
            else:
                raise SimulationError("unknown phase type %r" % (phase,))
        result = ProcessResult(pname, user_time, sys_time, started,
                               self.sim.now, io_bytes,
                               guest_user=guest_user)
        self.results.append(result)
        return result

    def __repr__(self) -> str:
        state = "booted" if self.booted else "down"
        return "<OperatingSystem %s on %s (%s)>" % (self.name,
                                                    self.iface.name, state)
