"""Guest operating-system profile: boot/shutdown/resume behaviour.

The defaults model the paper's Red Hat Linux 7.x guest: a cold boot
streams the kernel image, then runs init scripts that issue thousands of
small scattered reads (the dominant cost on a cold disk) interleaved
with script execution.  Restoring a suspended VM skips all of this —
which is exactly why Table 2's VM-restore rows are so much faster than
VM-reboot.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.simulation.kernel import SimulationError

__all__ = ["GuestOsProfile"]


@dataclass(frozen=True)
class GuestOsProfile:
    """Boot-sequence shape of a guest OS distribution."""

    name: str = "redhat-7.2"
    #: Sequential kernel + initrd load at boot start.
    kernel_read_bytes: int = 12 * 1024 * 1024
    #: Number of small scattered reads issued by init scripts/daemons.
    scattered_reads: int = 600
    #: Size of each scattered read.
    scattered_read_bytes: int = 32 * 1024
    #: CPU burned by init scripts (user, sys).
    boot_cpu_user: float = 13.0
    boot_cpu_sys: float = 15.0
    #: Relative jitter applied to boot work (run-to-run variance).
    boot_jitter: float = 0.08
    #: CPU cost of an orderly shutdown.
    shutdown_cpu: float = 2.0
    #: CPU cost of waking from a restored memory image.
    resume_cpu: float = 0.8
    #: Guest timer interrupt frequency (trapped by the VMM every tick).
    timer_hz: float = 100.0
    #: Region of the virtual disk touched at boot (kernel + /etc + libs).
    boot_footprint_bytes: int = 256 * 1024 * 1024

    def __post_init__(self):
        if self.scattered_reads < 0 or self.kernel_read_bytes < 0:
            raise SimulationError("boot profile sizes must be non-negative")
        if not 0 <= self.boot_jitter < 1:
            raise SimulationError("boot_jitter must be in [0, 1)")
        if self.timer_hz < 0:
            raise SimulationError("timer_hz must be non-negative")

    @property
    def total_boot_read_bytes(self) -> int:
        """All bytes a cold boot reads."""
        return (self.kernel_read_bytes
                + self.scattered_reads * self.scattered_read_bytes)
