"""The machine interface an operating system runs against.

An :class:`~repro.guestos.kernel.OperatingSystem` is machine-agnostic:
it executes applications against this interface.  On a physical machine
(:class:`PhysicalHost`) compute runs natively and kernel-event rates are
free.  Inside a virtual machine (:class:`repro.vmm.virtual_machine
.VirtualMachine` implements the same interface) the very same workload
pays trap-and-emulate dilation — that difference *is* the paper's
Figure 1 / Table 1 measurement.
"""

from __future__ import annotations

from typing import Optional, Tuple

from repro.guestos.costs import OsCosts
from repro.hardware.cpu import CpuTask
from repro.hardware.machine import PhysicalMachine
from repro.simulation.kernel import Simulation
from repro.storage.base import FileSystem
from repro.storage.localfs import LocalFileSystem
from repro.workloads.applications import KernelEventRates

__all__ = ["MachineInterface", "PhysicalHost"]


class MachineInterface:
    """What an OS needs from the machine below it."""

    sim: Simulation
    name: str
    costs: OsCosts

    @property
    def root_fs(self) -> FileSystem:
        """The file system holding the OS's own files."""
        raise NotImplementedError

    def run_compute(self, pname: str, user_seconds: float,
                    sys_seconds: float, rates: KernelEventRates):
        """Process generator: execute CPU demand.

        Returns the *observed* ``(user, sys)`` CPU seconds — equal to the
        demand on physical hardware, dilated inside a VM.
        """
        raise NotImplementedError

    def io_sys_seconds(self, nbytes: int, operations: int) -> float:
        """Native kernel CPU cost of an I/O request stream."""
        raise NotImplementedError

    @property
    def is_virtual(self) -> bool:
        """True for virtual machines."""
        return False


class PhysicalHost(MachineInterface):
    """A physical machine wearing the OS-facing interface.

    ``run_compute`` submits work straight to the host CPU; kernel events
    cost nothing beyond the native user/sys split already in the demand.
    """

    def __init__(self, machine: PhysicalMachine,
                 root_fs: Optional[LocalFileSystem] = None,
                 costs: Optional[OsCosts] = None,
                 cache_bytes: float = 256 * 1024 * 1024):
        self.sim = machine.sim
        self.machine = machine
        self.name = machine.name
        self.costs = costs or OsCosts()
        self._root_fs = root_fs or LocalFileSystem(
            machine.sim, machine.disk, cache_bytes=cache_bytes,
            name=machine.name + ".rootfs")
        machine.host_os = self

    @property
    def root_fs(self) -> LocalFileSystem:
        return self._root_fs

    def run_compute(self, pname: str, user_seconds: float,
                    sys_seconds: float, rates: KernelEventRates):
        demand = user_seconds + sys_seconds
        if demand > 0:
            task = CpuTask("%s@%s" % (pname, self.name), work=demand)
            yield self.machine.cpu.submit(task)
        return (user_seconds, sys_seconds)

    def io_sys_seconds(self, nbytes: int, operations: int) -> float:
        return self.costs.io_sys_seconds(nbytes, operations)

    def __repr__(self) -> str:
        return "<PhysicalHost %s>" % self.name
