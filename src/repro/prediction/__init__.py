"""RPS-style resource prediction (Section 3.2, application perspective).

"The RPS system is designed to help this form of adaptation.  Fed by a
streaming time-series produced by a resource sensor, it provides
time-series and application-level performance predictions on which basis
applications can make adaptation decisions."

* :mod:`~repro.prediction.sensors` — resource sensors producing
  streaming time series from live simulation objects;
* :mod:`~repro.prediction.timeseries` — last-value, windowed-mean and
  autoregressive one-step predictors with evaluation helpers;
* :mod:`~repro.prediction.predictor` — application-level running-time
  prediction and host selection.
"""

from repro.prediction.predictor import RunningTimePredictor
from repro.prediction.sensors import BandwidthSensor, HostLoadSensor
from repro.prediction.timeseries import (
    ArPredictor,
    LastValuePredictor,
    WindowedMeanPredictor,
    evaluate_predictor,
)

__all__ = [
    "ArPredictor",
    "BandwidthSensor",
    "HostLoadSensor",
    "LastValuePredictor",
    "RunningTimePredictor",
    "WindowedMeanPredictor",
    "evaluate_predictor",
]
