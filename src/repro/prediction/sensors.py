"""Resource sensors: streaming time series from live simulation objects.

RPS "includes sensors for Unix host load, network bandwidth along flows
in the network, ... and can be extended to include sensors that are
appropriate for VM environments".  The host-load sensor samples a CPU's
run-queue length on a fixed period, exactly like a 1-second load
average; a VM-aware variant samples one task group's share instead; the
bandwidth sensor samples spare capacity along one network path.
"""

from __future__ import annotations

from typing import List, Optional

from repro.hardware.cpu import ProcessorSharingCpu, TaskGroup
from repro.simulation.kernel import Interrupt, Process, SimulationError
from repro.simulation.monitor import TimeSeriesMonitor

__all__ = ["HostLoadSensor", "BandwidthSensor"]


class HostLoadSensor:
    """Periodic sampling of a CPU's load (or one VM group's share)."""

    #: Default retention: enough history for any predictor fit, but a
    #: hard bound — a week-long steady-state run no longer grows a
    #: per-sample list without limit.
    MAX_SAMPLES = 4096

    def __init__(self, cpu: ProcessorSharingCpu, period: float = 1.0,
                 group: Optional[TaskGroup] = None,
                 max_samples: Optional[int] = None):
        if period <= 0:
            raise SimulationError("period must be positive")
        self.sim = cpu.sim
        self.cpu = cpu
        self.period = float(period)
        self.group = group
        self.monitor = TimeSeriesMonitor(
            "hostload-sensor",
            max_samples=max_samples or self.MAX_SAMPLES)
        self._proc: Optional[Process] = None

    @property
    def series(self) -> List[float]:
        """The retained sample values, oldest first."""
        return self.monitor.values

    def _sample(self) -> float:
        if self.group is None:
            # Time-averaged run-queue length over the sample period — a
            # 1-second load average, immune to aliasing against
            # burst-structured workloads.
            value = self.cpu.run_queue.time_average(
                max(0.0, self.sim.now - self.period), self.sim.now)
        else:
            value = sum(self.cpu.current_rate(task)
                        for task in self.cpu.active_tasks
                        if task.group is self.group)
        return float(value)

    def start(self) -> None:
        """Begin streaming samples every ``period`` seconds."""
        if self._proc is not None:
            raise SimulationError("sensor already running")
        self._proc = self.sim.spawn(self._run(), name="hostload-sensor")

    def stop(self) -> None:
        """Stop sampling (the collected series stays available)."""
        if self._proc is not None and self._proc.is_alive:
            self._proc.interrupt(cause="sensor-stop")
        self._proc = None

    def _run(self):
        try:
            while True:
                yield self.sim.timeout(self.period)
                self.monitor.record(self.sim.now, self._sample())
        except Interrupt:
            return

    def __len__(self) -> int:
        return len(self.monitor)

    def __repr__(self) -> str:
        return "<HostLoadSensor %s n=%d>" % (self.cpu.name,
                                             len(self.monitor))


class BandwidthSensor:
    """Periodic sampling of spare bandwidth along one network path.

    Feeds the same predictors as host load; an application planning a
    bulk transfer forecasts the path's availability first.
    """

    #: Same retention bound as :class:`HostLoadSensor`.
    MAX_SAMPLES = 4096

    def __init__(self, engine, src: str, dst: str, period: float = 5.0,
                 max_samples: Optional[int] = None):
        if period <= 0:
            raise SimulationError("period must be positive")
        self.sim = engine.sim
        self.engine = engine
        self.src = src
        self.dst = dst
        self.period = float(period)
        self.monitor = TimeSeriesMonitor(
            "bandwidth-sensor",
            max_samples=max_samples or self.MAX_SAMPLES)
        self._proc: Optional[Process] = None
        # Validate the path exists up front.
        engine.network.path_links(src, dst)

    @property
    def series(self) -> List[float]:
        """The retained sample values, oldest first."""
        return self.monitor.values

    def start(self) -> None:
        """Begin streaming samples every ``period`` seconds."""
        if self._proc is not None:
            raise SimulationError("sensor already running")
        self._proc = self.sim.spawn(self._run(), name="bandwidth-sensor")

    def stop(self) -> None:
        """Stop sampling (the collected series stays available)."""
        if self._proc is not None and self._proc.is_alive:
            self._proc.interrupt(cause="sensor-stop")
        self._proc = None

    def _run(self):
        try:
            while True:
                yield self.sim.timeout(self.period)
                self.monitor.record(
                    self.sim.now,
                    self.engine.available_bandwidth(self.src, self.dst))
        except Interrupt:
            return

    def __len__(self) -> int:
        return len(self.monitor)

    def __repr__(self) -> str:
        return "<BandwidthSensor %s->%s n=%d>" % (self.src, self.dst,
                                                  len(self.monitor))
