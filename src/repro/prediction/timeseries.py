"""Time-series predictors: last-value, windowed mean, autoregressive.

The predictor families RPS ships.  All share a two-method protocol:
``fit(history)`` then ``predict(steps)`` which returns forecasts for the
next ``steps`` samples.  :func:`evaluate_predictor` measures one-step
mean squared error by walking forward through a series, which is how a
grid application would pick the best model for a host's load signal.
"""

from __future__ import annotations

from typing import List, Sequence

import numpy as np

from repro.simulation.kernel import SimulationError

__all__ = [
    "LastValuePredictor",
    "WindowedMeanPredictor",
    "ArPredictor",
    "evaluate_predictor",
]


class LastValuePredictor:
    """Predicts that the future equals the most recent sample.

    Hard to beat at one step on strongly autocorrelated signals like
    host load — the observation that motivated RPS's model selection.
    """

    def __init__(self):
        self._last = 0.0
        self._fitted = False

    def fit(self, history: Sequence[float]) -> "LastValuePredictor":
        if len(history) < 1:
            raise SimulationError("need at least one sample")
        self._last = float(history[-1])
        self._fitted = True
        return self

    def predict(self, steps: int = 1) -> List[float]:
        if not self._fitted:
            raise SimulationError("fit() first")
        return [self._last] * steps


class WindowedMeanPredictor:
    """Predicts the mean of the last ``window`` samples."""

    def __init__(self, window: int = 8):
        if window < 1:
            raise SimulationError("window must be >= 1")
        self.window = int(window)
        self._mean = 0.0
        self._fitted = False

    def fit(self, history: Sequence[float]) -> "WindowedMeanPredictor":
        if len(history) < 1:
            raise SimulationError("need at least one sample")
        tail = list(history[-self.window:])
        self._mean = float(sum(tail) / len(tail))
        self._fitted = True
        return self

    def predict(self, steps: int = 1) -> List[float]:
        if not self._fitted:
            raise SimulationError("fit() first")
        return [self._mean] * steps


class ArPredictor:
    """An AR(p) model fit by least squares (RPS's workhorse family)."""

    def __init__(self, order: int = 4):
        if order < 1:
            raise SimulationError("order must be >= 1")
        self.order = int(order)
        self._coeffs: np.ndarray = np.zeros(0)
        self._intercept = 0.0
        self._tail: List[float] = []

    def fit(self, history: Sequence[float]) -> "ArPredictor":
        values = np.asarray(history, dtype=float)
        if len(values) < self.order + 2:
            raise SimulationError("need at least order+2 samples")
        # Design matrix of lagged values: predict x[t] from x[t-1..t-p].
        rows = []
        targets = []
        for t in range(self.order, len(values)):
            rows.append(values[t - self.order:t][::-1])
            targets.append(values[t])
        design = np.column_stack([np.ones(len(rows)), np.asarray(rows)])
        solution, *_rest = np.linalg.lstsq(design, np.asarray(targets),
                                           rcond=None)
        self._intercept = float(solution[0])
        self._coeffs = solution[1:]
        self._tail = [float(v) for v in values[-self.order:]]
        return self

    def predict(self, steps: int = 1) -> List[float]:
        if not self._tail:
            raise SimulationError("fit() first")
        tail = list(self._tail)
        out = []
        for _i in range(steps):
            lags = np.asarray(tail[-self.order:][::-1])
            nxt = float(self._intercept + self._coeffs @ lags)
            out.append(nxt)
            tail.append(nxt)
        return out


def evaluate_predictor(predictor_factory, series: Sequence[float],
                       warmup: int = 16) -> float:
    """Walk-forward one-step mean squared error.

    ``predictor_factory`` builds a fresh predictor; it is refit on the
    history prefix before each one-step forecast.
    """
    if len(series) <= warmup + 1:
        raise SimulationError("series too short for evaluation")
    errors = []
    for t in range(warmup, len(series) - 1):
        predictor = predictor_factory()
        predictor.fit(series[:t + 1])
        forecast = predictor.predict(1)[0]
        errors.append((forecast - series[t + 1]) ** 2)
    return float(sum(errors) / len(errors))
