"""Application-level running-time prediction.

RPS turns load forecasts into "application-level performance predictions
on which basis applications can make adaptation decisions".  The model
here is the classic load-average one: on a machine whose other-work load
average is L and which has ``cores`` processors, a single-threaded task
receives roughly ``min(1, cores / (L + 1))`` of a core, so its running
time is dilated by the reciprocal.  Prediction iterates the forecast
over the task's expected horizon.
"""

from __future__ import annotations

from typing import Callable, List, Sequence

from repro.simulation.kernel import SimulationError

__all__ = ["RunningTimePredictor"]


class RunningTimePredictor:
    """Forecast wall-clock running time of compute work on a host."""

    def __init__(self, predictor_factory: Callable, cores: int = 1,
                 sample_period: float = 1.0):
        if cores < 1:
            raise SimulationError("cores must be >= 1")
        if sample_period <= 0:
            raise SimulationError("sample period must be positive")
        self.predictor_factory = predictor_factory
        self.cores = int(cores)
        self.sample_period = float(sample_period)

    def dilation(self, load: float) -> float:
        """Running-time multiplier implied by a load level."""
        load = max(0.0, load)
        share = min(1.0, self.cores / (load + 1.0))
        return 1.0 / share

    def predict_running_time(self, work_seconds: float,
                             load_history: Sequence[float]) -> float:
        """Expected wall time of ``work_seconds`` of CPU demand.

        Walks the load forecast forward, consuming work at the
        load-implied rate during each sample period until the demand is
        exhausted.
        """
        if work_seconds < 0:
            raise SimulationError("work must be non-negative")
        if work_seconds == 0:
            return 0.0
        predictor = self.predictor_factory()
        predictor.fit(load_history)
        # Forecast enough steps to cover a pessimistic horizon.
        max_steps = max(4, int(work_seconds * 4 / self.sample_period) + 4)
        forecast = predictor.predict(max_steps)
        remaining = float(work_seconds)
        elapsed = 0.0
        for level in forecast:
            rate = 1.0 / self.dilation(level)
            chunk = rate * self.sample_period
            if chunk >= remaining:
                return elapsed + remaining / rate
            remaining -= chunk
            elapsed += self.sample_period
        # Beyond the forecast, assume the last level persists.
        rate = 1.0 / self.dilation(forecast[-1])
        return elapsed + remaining / rate

    def rank_hosts(self, work_seconds: float,
                   histories: dict) -> List[str]:
        """Order candidate hosts by predicted running time (best first).

        ``histories`` maps host name -> load history; this is the
        adaptation decision of Section 3.2's application perspective.
        """
        scored = [(self.predict_running_time(work_seconds, history), name)
                  for name, history in histories.items()]
        return [name for _time, name in sorted(scored)]
