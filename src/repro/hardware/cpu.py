"""A multi-core CPU modelled as a hierarchical processor-sharing server.

Rather than simulating every scheduler quantum as a discrete event (which
would make hour-long SPEC runs intractable), the CPU advances all runnable
tasks fluidly between *membership changes*: whenever a task arrives,
finishes, is cancelled, or has its parameters changed, the model

1. charges every active task for the work it received since the last
   change (``remaining -= elapsed * rate``),
2. recomputes each task's service rate from the new task population, and
3. schedules a single event at the earliest projected completion.

Scheduling is two-level, which is exactly what a classic VMM needs: a
:class:`TaskGroup` represents one virtual machine monitor process — the
host scheduler sees it as a *single entity* no matter how many guest
processes run inside, and the group's members then share the group's
allocation (the virtual CPU) among themselves.  Ungrouped tasks are
ordinary host processes.

Scheduler overheads are folded into the rates as *taxes* computed from
event frequencies times per-event costs — the same arithmetic the paper
uses to explain VMM overheads:

* a **context-switch tax** of ``switch_cost / quantum`` applies to every
  top-level entity while more entities are runnable than there are cores;
* a group's **extra switch cost** models the VMM *world switch* (the
  paper: "world switches preempt the VMM when load is applied to the
  physical machine") — preempting a VMM costs far more than preempting
  an ordinary process, so groups carry a larger per-preemption price;
* a group's **member switch cost** models emulated *guest context
  switches* (the paper: "guest context switches involve the execution of
  privileged instructions that are trapped and emulated by the VMM") —
  paid while more than one member shares the virtual CPU;
* a per-task **rate factor** models steady trap-and-emulate dilation
  (syscalls, page faults, timer interrupts).

Shares follow weighted max-min fairness (water-filling) at both levels;
each task can use at most one core, and each group at most ``vcpus``
cores (VMware Workstation-era VMs are uniprocessor).
"""

from __future__ import annotations

import math
from typing import Dict, List, Optional, Sequence, Tuple

from repro.simulation.kernel import Event, Simulation, SimulationError
from repro.simulation.monitor import TimeSeriesMonitor

__all__ = ["CpuTask", "TaskGroup", "ProcessorSharingCpu"]

#: Tolerance below which remaining work counts as finished (CPU-seconds).
_WORK_EPSILON = 1e-9

#: Retention window (simulated seconds) for the CPU's utilization and
#: run-queue monitors.  Generous — an hour covers every experiment in
#: the suite, so point queries behave as before — but it bounds memory
#: on long steady-state runs; full-range ``time_average`` stays exact
#: across evictions (the monitor carries the dropped integral).
MONITOR_WINDOW = 3600.0


class TaskGroup:
    """A scheduling container: one host-visible entity, many member tasks.

    Used by the VMM to make a whole virtual machine compete for the host
    CPU as a single process.
    """

    def __init__(self, name: str, weight: float = 1.0, vcpus: int = 1,
                 max_rate: Optional[float] = None,
                 extra_switch_cost: float = 0.0,
                 member_switch_cost: float = 0.0,
                 member_quantum: float = 0.01):
        if weight <= 0:
            raise SimulationError("group weight must be positive")
        if vcpus < 1:
            raise SimulationError("group needs at least one vcpu")
        if member_quantum <= 0:
            raise SimulationError("member quantum must be positive")
        self.name = name
        self.weight = float(weight)
        self.vcpus = int(vcpus)
        self.max_rate = max_rate
        self.extra_switch_cost = float(extra_switch_cost)
        self.member_switch_cost = float(member_switch_cost)
        self.member_quantum = float(member_quantum)
        #: Cumulative host CPU-seconds delivered to this group across
        #: its whole life, all hosts included (the metering basis for
        #: the paper's per-user resource accounting).
        self.cpu_consumed = 0.0
        #: Scheduling-parameter signature, kept current by
        #: ``ProcessorSharingCpu.update_group`` (the only mutator).
        self._sig = (self.vcpus, self.weight, self.max_rate,
                     self.extra_switch_cost, self.member_switch_cost,
                     self.member_quantum)

    def __repr__(self) -> str:
        return "<TaskGroup %s vcpus=%d>" % (self.name, self.vcpus)


class CpuTask:
    """A single-threaded demand for CPU service.

    Parameters
    ----------
    name:
        Identifier used in traces and error messages.
    work:
        Demand in CPU-seconds of a dedicated core at native speed.
    weight:
        Proportional-share weight (relative to sibling tasks/entities).
    rate_factor:
        Progress per second of host CPU actually granted; below 1.0 this
        charges steady virtualization dilation.
    max_rate:
        Optional hard cap on the task's service rate in core-equivalents
        (resource control, Section 3.2 of the paper).
    extra_switch_cost:
        Additional seconds charged per preemption while time-sliced, on
        top of the CPU's base context-switch cost.
    group:
        The :class:`TaskGroup` (virtual machine) this task runs inside,
        or ``None`` for an ordinary host process.
    """

    def __init__(self, name: str, work: float, weight: float = 1.0,
                 rate_factor: float = 1.0, max_rate: Optional[float] = None,
                 extra_switch_cost: float = 0.0,
                 group: Optional[TaskGroup] = None):
        if work < 0:
            raise SimulationError("task work must be non-negative")
        if weight <= 0:
            raise SimulationError("task weight must be positive")
        if not 0.0 < rate_factor <= 1.0:
            raise SimulationError("rate_factor must be in (0, 1]")
        if max_rate is not None and max_rate < 0:
            raise SimulationError("max_rate must be non-negative")
        self.name = name
        self.work = float(work)
        self.remaining = float(work)
        self.weight = float(weight)
        self.rate_factor = float(rate_factor)
        self.max_rate = max_rate
        self.extra_switch_cost = float(extra_switch_cost)
        self.group = group
        #: Event fired when the task's work reaches zero.
        self.done: Optional[Event] = None
        #: Simulation times bracketing the task's service.
        self.started_at: Optional[float] = None
        self.finished_at: Optional[float] = None
        #: Host CPU seconds consumed (shares actually granted).
        self.cpu_consumed = 0.0
        #: Scheduling-parameter signature, kept current by
        #: ``ProcessorSharingCpu.update_task`` (the only mutator).
        self._sig = (self.weight, self.max_rate, self.rate_factor,
                     self.extra_switch_cost)

    @property
    def elapsed(self) -> Optional[float]:
        """Wall-clock service duration, once finished."""
        if self.started_at is None or self.finished_at is None:
            return None
        return self.finished_at - self.started_at

    def __repr__(self) -> str:
        return "<CpuTask %s %.3f/%.3fs>" % (self.name,
                                            self.work - self.remaining,
                                            self.work)


def _waterfill(items: Sequence[Tuple[object, float, float]],
               capacity: float) -> Dict[object, float]:
    """Weighted max-min shares: ``items`` are (key, weight, cap) triples."""
    shares: Dict[object, float] = {}
    unfixed = list(items)
    capacity = max(capacity, 0.0)
    if len(unfixed) == 1:
        # Single entity (the common case): same arithmetic as one round
        # of the general loop below, without the bookkeeping.
        key, weight, cap = unfixed[0]
        proportional = capacity * weight / weight
        shares[key] = cap if proportional >= cap - 1e-15 else proportional
        return shares
    while unfixed:
        total_weight = sum(weight for _key, weight, _cap in unfixed)
        pinned = []
        for entry in unfixed:
            key, weight, cap = entry
            proportional = capacity * weight / total_weight
            if proportional >= cap - 1e-15:
                shares[key] = cap
                pinned.append(entry)
        if not pinned:
            for key, weight, _cap in unfixed:
                shares[key] = capacity * weight / total_weight
            break
        for entry in pinned:
            unfixed.remove(entry)
            capacity -= shares[entry[0]]
        capacity = max(capacity, 0.0)
    return shares


class ProcessorSharingCpu:
    """A ``cores``-way CPU shared among tasks and task groups."""

    def __init__(self, sim: Simulation, cores: int = 1, speed: float = 1.0,
                 quantum: float = 0.01, context_switch_cost: float = 5e-6,
                 name: str = "cpu"):
        if cores < 1:
            raise SimulationError("cpu needs at least one core")
        if speed <= 0:
            raise SimulationError("cpu speed must be positive")
        if quantum <= 0:
            raise SimulationError("scheduler quantum must be positive")
        self.sim = sim
        self.name = name
        self.cores = int(cores)
        self.speed = float(speed)
        self.quantum = float(quantum)
        self.context_switch_cost = float(context_switch_cost)
        # Insertion-ordered dict-as-set: iteration stays arrival order
        # while membership tests and removals are O(1) in the task
        # population.
        self._active: Dict[CpuTask, None] = {}
        self._last_update = sim.now
        self._completion_generation = 0
        #: CPU-level half of the population signature (immutable).
        self._param_sig = (self.cores, self.speed, self.quantum,
                           self.context_switch_cost)
        #: Simulation-owned memo of (shares, rates, share_sum) per
        #: population signature — see ``_sched_state``.  Values are
        #: pure functions of the key; owning the memo by the simulation
        #: (not the module) keeps its lifetime one world's, so shards
        #: and co-resident replications can never couple through it.
        #: Bounded: cleared wholesale if an adversarial workload
        #: produces thousands of distinct signatures.
        self._epoch_cache: Dict[Tuple, Tuple] = \
            sim.model_cache("cpu.sched_epochs")
        #: Memoized (singles, groups, share_vals, rate_vals, share_sum,
        #: items, order) for the current task population; ``None`` after
        #: any membership or parameter change.  One membership change
        #: previously recomputed shares about five times (``_advance`` +
        #: ``_reschedule`` + the ``_rates``/``_shares``/``_population``
        #: call chains).
        self._sched_cache: Optional[Tuple] = None
        #: Fraction of total capacity in use, sampled at membership changes.
        self.utilization = TimeSeriesMonitor(name + ".utilization",
                                             window=MONITOR_WINDOW)
        #: Number of host-schedulable entities, sampled at changes.
        self.run_queue = TimeSeriesMonitor(name + ".runqueue",
                                           window=MONITOR_WINDOW)

    # -- public API ---------------------------------------------------------

    @property
    def active_tasks(self) -> List[CpuTask]:
        """Snapshot of the tasks currently receiving service."""
        return list(self._active)

    def submit(self, task: CpuTask) -> Event:
        """Start serving ``task``; the returned event fires at completion.

        A task with zero work completes immediately (at the current time).
        """
        if task.done is not None:
            raise SimulationError("task %s was already submitted" % task.name)
        task.done = Event(self.sim)
        task.started_at = self.sim.now
        self._advance()
        if task.remaining <= _WORK_EPSILON:
            task.finished_at = self.sim.now
            task.done.succeed(task)
        else:
            self._active[task] = None
            self._invalidate()
        self._reschedule()
        return task.done

    def run(self, task: CpuTask):
        """Process-style helper: ``yield from cpu.run(task)``."""
        yield self.submit(task)
        return task

    def cancel(self, task: CpuTask) -> float:
        """Remove an unfinished task, returning its remaining work.

        Used for VM suspend and migration: the remaining demand is carried
        to the destination and resubmitted there.
        """
        self._advance()
        if task not in self._active:
            raise SimulationError("task %s is not active" % task.name)
        del self._active[task]
        self._invalidate()
        self._reschedule()
        return task.remaining

    def update_task(self, task: CpuTask, rate_factor: Optional[float] = None,
                    max_rate: Optional[float] = None,
                    weight: Optional[float] = None,
                    clear_max_rate: bool = False) -> None:
        """Change a running task's scheduling parameters mid-flight."""
        self._advance()
        if task not in self._active:
            raise SimulationError("task %s is not active" % task.name)
        if rate_factor is not None:
            if not 0.0 < rate_factor <= 1.0:
                raise SimulationError("rate_factor must be in (0, 1]")
            task.rate_factor = rate_factor
        if clear_max_rate:
            task.max_rate = None
        elif max_rate is not None:
            task.max_rate = max_rate
        if weight is not None:
            if weight <= 0:
                raise SimulationError("weight must be positive")
            task.weight = weight
        task._sig = (task.weight, task.max_rate, task.rate_factor,
                     task.extra_switch_cost)
        self._invalidate()
        self._reschedule()

    def update_group(self, group: TaskGroup,
                     max_rate: Optional[float] = None,
                     weight: Optional[float] = None,
                     clear_max_rate: bool = False) -> None:
        """Change a group's scheduling parameters mid-flight.

        This is the hook the paper's resource-control toolchain uses: a
        compiled owner constraint becomes a cap or weight on the VM's
        group (see :mod:`repro.scheduling`).
        """
        self._advance()
        if clear_max_rate:
            group.max_rate = None
        elif max_rate is not None:
            group.max_rate = max_rate
        if weight is not None:
            if weight <= 0:
                raise SimulationError("weight must be positive")
            group.weight = weight
        group._sig = (group.vcpus, group.weight, group.max_rate,
                      group.extra_switch_cost, group.member_switch_cost,
                      group.member_quantum)
        self._invalidate()
        self._reschedule()

    def current_rate(self, task: CpuTask) -> float:
        """The task's instantaneous service rate in native CPU-seconds/s."""
        return self._rates().get(task, 0.0)

    def sync(self) -> None:
        """Bring every task's ``remaining`` up to the current time.

        Progress normally advances lazily at membership changes; call
        this before reading ``task.remaining`` mid-run (monitors,
        experiment harnesses).
        """
        self._advance()
        self._reschedule()

    # -- internals ----------------------------------------------------------

    def _invalidate(self) -> None:
        self._sched_cache = None

    def _sched_state(self) -> Tuple:
        """(singles, groups, share_vals, rate_vals, share_sum, items,
        order), per epoch.

        Valid until the next membership/parameter change; every mutator
        calls :meth:`_invalidate` after touching scheduling state.
        ``order`` is the canonical task ordering (singles, then group
        members); ``share_vals``/``rate_vals`` are positional over it;
        ``share_sum`` is their total and ``items`` binds
        ``(task, rate, share)`` per task, so the advance/horizon loops
        and utilization samples reuse the epoch's arithmetic instead of
        re-deriving it at every reschedule.  Iterating ``items`` in
        canonical rather than arrival order is float-safe: per-task
        updates are independent, and a group's members keep their
        relative arrival order, so ``group.cpu_consumed`` accumulates
        in the same sequence either way.
        """
        state = self._sched_cache
        if state is None:
            singles: List[CpuTask] = []
            groups: Dict[TaskGroup, List[CpuTask]] = {}
            for task in self._active:  # simlint: disable=R22  processor sharing recomputes shares over the host's runnable set; per-host multiprogramming, memoized per epoch
                group = task.group
                if group is None:
                    singles.append(task)
                else:
                    members = groups.get(group)
                    if members is None:
                        groups[group] = [task]
                    else:
                        members.append(task)
            # Shares and rates are pure functions of the numeric
            # population signature below; the same few signatures recur
            # across epochs *and* replications, so the results are
            # memoized process-wide (positionally, keyed by value — the
            # task objects differ per world, the arithmetic does not).
            # Per-entity ``_sig`` tuples are prebuilt at construction
            # and refreshed by ``update_task``/``update_group``.
            if groups:
                sig = (self._param_sig,
                       tuple([t._sig for t in singles]),
                       tuple([(g._sig, tuple([m._sig for m in members]))
                              for g, members in groups.items()]))
                order = singles + [m for members in groups.values()
                                   for m in members]
            else:
                sig = (self._param_sig,
                       tuple([t._sig for t in singles]), ())
                order = singles
            epochs = self._epoch_cache
            hit = epochs.get(sig)
            if hit is None:
                shares = self._compute_shares(singles, groups)
                rates = self._compute_rates(shares, singles, groups)
                share_sum = sum(shares.values())
                share_vals = tuple([shares[t] for t in order])
                rate_vals = tuple([rates[t] for t in order])
                if len(epochs) >= 4096:
                    epochs.clear()
                epochs[sig] = (share_vals, rate_vals, share_sum)
            else:
                share_vals, rate_vals, share_sum = hit
            items = list(zip(order, rate_vals, share_vals))
            state = self._sched_cache = (singles, groups, share_vals,
                                         rate_vals, share_sum, items,
                                         order)
        return state

    def _population(self) -> Tuple[List[CpuTask],
                                   Dict[TaskGroup, List[CpuTask]]]:
        state = self._sched_state()
        return state[0], state[1]

    def _shares(self) -> Dict[CpuTask, float]:
        state = self._sched_state()
        return dict(zip(state[6], state[2]))

    def _compute_shares(self, singles: List[CpuTask],
                        groups: Dict[TaskGroup, List[CpuTask]]
                        ) -> Dict[CpuTask, float]:
        """Two-level weighted max-min fair core shares."""
        if not self._active:
            return {}
        entities: List[Tuple[object, float, float]] = []
        for task in singles:
            cap = 1.0
            if task.max_rate is not None:
                cap = min(cap, task.max_rate / self.speed)
            entities.append((task, task.weight, cap))
        for group, members in groups.items():
            cap = float(min(group.vcpus, len(members)))
            if group.max_rate is not None:
                cap = min(cap, group.max_rate / self.speed)
            entities.append((group, group.weight, cap))
        top = _waterfill(entities, float(self.cores))

        shares: Dict[CpuTask, float] = {}
        for task in singles:
            shares[task] = top[task]
        for group, members in groups.items():
            member_items = []
            for task in members:
                cap = 1.0
                if task.max_rate is not None:
                    cap = min(cap, task.max_rate / self.speed)
                member_items.append((task, task.weight, cap))
            shares.update(_waterfill(member_items, top[group]))
        return shares

    def _rates(self) -> Dict[CpuTask, float]:
        state = self._sched_state()
        return dict(zip(state[6], state[3]))

    def _compute_rates(self, shares: Dict[CpuTask, float],
                       singles: List[CpuTask],
                       groups: Dict[TaskGroup, List[CpuTask]]
                       ) -> Dict[CpuTask, float]:
        """Instantaneous service rate per task, after overhead taxes."""
        entity_count = len(singles) + len(groups)
        contended = entity_count > self.cores
        rates: Dict[CpuTask, float] = {}
        for task, share in shares.items():
            rate = share * self.speed * task.rate_factor
            if contended:
                extra = (task.group.extra_switch_cost if task.group
                         else task.extra_switch_cost)
                per_switch = self.context_switch_cost + extra
                rate *= (1.0 - min(0.9, per_switch / self.quantum))
            if task.group is not None:
                members = groups[task.group]
                if len(members) > task.group.vcpus \
                        and task.group.member_switch_cost > 0:
                    member_tax = min(0.9, task.group.member_switch_cost
                                     / task.group.member_quantum)
                    rate *= (1.0 - member_tax)
            if task.max_rate is not None:
                rate = min(rate, task.max_rate)
            rates[task] = rate
        return rates

    def _advance(self) -> None:
        """Charge all active tasks for service since the last update.

        Runs before any mutation, so the memoized state still describes
        the population the elapsed interval was served under.
        """
        now = self.sim.now
        elapsed = now - self._last_update
        if elapsed > 0 and self._active:
            items = self._sched_state()[5]
            speed = self.speed
            for task, rate, share in items:
                task.remaining = max(0.0,
                                     task.remaining - elapsed * rate)
                consumed = elapsed * share * speed
                task.cpu_consumed += consumed
                group = task.group
                if group is not None:
                    group.cpu_consumed += consumed
        self._last_update = now

    def _reschedule(self) -> None:
        """Complete finished tasks and arm the next completion timer."""
        now = self.sim.now
        finished = [t for t in self._active if t.remaining <= _WORK_EPSILON]  # simlint: disable=R22  completion sweep over the per-host runnable set; see _sched_state
        for task in finished:
            del self._active[task]
            task.remaining = 0.0
            task.finished_at = now
            task.done.succeed(task)
        if finished:
            self._invalidate()
        state = self._sched_state()
        singles, groups = state[0], state[1]
        share_sum, items = state[4], state[5]
        self.utilization.record(
            now, share_sum / self.cores if self._active else 0.0)
        self.run_queue.record(now, float(len(singles) + len(groups)))

        self._completion_generation += 1
        generation = self._completion_generation
        horizon = math.inf
        for task, rate, _share in items:
            if rate > 0:
                horizon = min(horizon, task.remaining / rate)
        if horizon is math.inf:
            return

        def fire(event, generation=generation):
            if generation != self._completion_generation:
                return  # superseded by a later membership change
            self._advance()
            self._reschedule()

        timer = self.sim.timeout(max(horizon, 0.0))
        timer.callbacks.append(fire)

    def __repr__(self) -> str:
        return "<ProcessorSharingCpu %s cores=%d active=%d>" % (
            self.name, self.cores, len(self._active))
