"""Network interface card: a rate-limited serialization point.

Path latency and bandwidth sharing live in :mod:`repro.gridnet`; the NIC
only models the end-host serialization bottleneck (a 100 Mb/s card cannot
emit faster than 100 Mb/s no matter how fat the path is) plus an optional
per-byte CPU-free copy overhead used by the VMM to price device
emulation.
"""

from __future__ import annotations

from repro.simulation.kernel import Simulation, SimulationError
from repro.simulation.resources import Resource

__all__ = ["NetworkInterface"]


class NetworkInterface:
    """A full-duplex NIC with independent tx/rx serialization."""

    def __init__(self, sim: Simulation, bandwidth: float = 12.5e6,
                 per_byte_overhead: float = 0.0, name: str = "nic"):
        if bandwidth <= 0 or per_byte_overhead < 0:
            raise SimulationError("invalid NIC parameters")
        self.sim = sim
        self.name = name
        self.bandwidth = float(bandwidth)
        self.per_byte_overhead = float(per_byte_overhead)
        self._tx = Resource(sim, capacity=1)
        self._rx = Resource(sim, capacity=1)
        self.bytes_sent = 0
        self.bytes_received = 0

    def serialization_time(self, nbytes: int) -> float:
        """Time to clock ``nbytes`` onto the wire."""
        return nbytes * (1.0 / self.bandwidth + self.per_byte_overhead)

    def transmit(self, nbytes: int):
        """Process generator: occupy the tx side for ``nbytes``."""
        yield from self._use(self._tx, nbytes)
        self.bytes_sent += nbytes

    def receive(self, nbytes: int):
        """Process generator: occupy the rx side for ``nbytes``."""
        yield from self._use(self._rx, nbytes)
        self.bytes_received += nbytes

    def _use(self, side: Resource, nbytes: int):
        if nbytes < 0:
            raise SimulationError("transfer size must be non-negative")
        request = side.request()
        yield request
        try:
            yield self.sim.timeout(self.serialization_time(nbytes))
        finally:
            side.release(request)

    def __repr__(self) -> str:
        return "<NetworkInterface %s %.1f Mb/s>" % (self.name,
                                                    self.bandwidth * 8 / 1e6)
