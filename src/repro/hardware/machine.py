"""The physical machine: CPU + memory + disk + NIC + identity.

A :class:`PhysicalMachine` is the unit a grid site contributes.  Its
attributes (architecture, memory, cores, site) are what the information
service in :mod:`repro.middleware.information` advertises, and its
hardware components are what the host operating system, the VMM and the
storage services consume.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, Optional

from repro.hardware.cpu import ProcessorSharingCpu
from repro.hardware.disk import Disk
from repro.hardware.nic import NetworkInterface
from repro.simulation.kernel import Simulation, SimulationError

__all__ = ["MachineSpec", "PhysicalMachine"]


@dataclass
class MachineSpec:
    """Construction-time description of a physical machine.

    The defaults approximate the paper's testbed: a dual Pentium III
    class node with 512 MB-1 GB of memory, a commodity IDE disk and
    100 Mb/s Ethernet.
    """

    cores: int = 2
    cpu_speed: float = 1.0
    memory_mb: int = 1024
    disk_seek_time: float = 0.004
    disk_transfer_rate: float = 40e6
    nic_bandwidth: float = 12.5e6
    architecture: str = "x86"
    quantum: float = 0.01
    context_switch_cost: float = 5e-6
    attributes: Dict[str, Any] = field(default_factory=dict)


class PhysicalMachine:
    """A grid node: hardware plus site identity."""

    def __init__(self, sim: Simulation, name: str, site: str = "local",
                 spec: Optional[MachineSpec] = None):
        if not name:
            raise SimulationError("machine needs a name")
        self.sim = sim
        self.name = name
        self.site = site
        self.spec = spec or MachineSpec()
        self.cpu = ProcessorSharingCpu(
            sim,
            cores=self.spec.cores,
            speed=self.spec.cpu_speed,
            quantum=self.spec.quantum,
            context_switch_cost=self.spec.context_switch_cost,
            name=name + ".cpu",
        )
        self.disk = Disk(
            sim,
            seek_time=self.spec.disk_seek_time,
            transfer_rate=self.spec.disk_transfer_rate,
            name=name + ".disk",
        )
        self.nic = NetworkInterface(
            sim,
            bandwidth=self.spec.nic_bandwidth,
            name=name + ".nic",
        )
        #: The host operating system, attached by guestos.OperatingSystem.
        self.host_os = None

    @property
    def memory_mb(self) -> int:
        """Installed physical memory in megabytes."""
        return self.spec.memory_mb

    @property
    def architecture(self) -> str:
        """Instruction-set architecture (classic VMs require same-ISA)."""
        return self.spec.architecture

    def describe(self) -> Dict[str, Any]:
        """Attribute dictionary for the grid information service."""
        record = {
            "name": self.name,
            "site": self.site,
            "architecture": self.architecture,
            "cores": self.spec.cores,
            "cpu_speed": self.spec.cpu_speed,
            "memory_mb": self.memory_mb,
            "disk_transfer_rate": self.spec.disk_transfer_rate,
            "nic_bandwidth": self.spec.nic_bandwidth,
        }
        record.update(self.spec.attributes)
        return record

    def __repr__(self) -> str:
        return "<PhysicalMachine %s@%s %d-core>" % (self.name, self.site,
                                                    self.spec.cores)
