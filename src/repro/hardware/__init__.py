"""Physical-machine hardware models.

* :mod:`~repro.hardware.cpu` — a multi-core generalized-processor-sharing
  CPU with context-switch and world-switch taxes;
* :mod:`~repro.hardware.disk` — a seek + streaming-transfer disk model;
* :mod:`~repro.hardware.nic` — a rate-limited network interface;
* :mod:`~repro.hardware.machine` — the :class:`PhysicalMachine` composite.
"""

from repro.hardware.cpu import CpuTask, ProcessorSharingCpu, TaskGroup
from repro.hardware.disk import Disk
from repro.hardware.machine import MachineSpec, PhysicalMachine
from repro.hardware.nic import NetworkInterface

__all__ = [
    "CpuTask",
    "Disk",
    "MachineSpec",
    "NetworkInterface",
    "PhysicalMachine",
    "ProcessorSharingCpu",
    "TaskGroup",
]
