"""A simple but faithful disk model: positioning cost plus streaming rate.

Requests queue FIFO at the disk arm.  A request pays a positioning cost
(seek + rotational latency) unless it is sequential with the previous
request, then streams its payload at the media transfer rate.  This is
enough to reproduce the two disk behaviours the paper's Table 2 depends
on: bulk image copies run at streaming speed, while a cold guest-OS boot
issuing thousands of small scattered reads is dominated by positioning
time.
"""

from __future__ import annotations

from repro.simulation.kernel import Simulation, SimulationError
from repro.simulation.monitor import StatAccumulator
from repro.simulation.resources import Resource

__all__ = ["Disk"]


class Disk:
    """A single-arm disk with FIFO queueing.

    Parameters
    ----------
    seek_time:
        Average positioning cost per non-sequential request, seconds.
    transfer_rate:
        Streaming bandwidth, bytes/second.
    """

    def __init__(self, sim: Simulation, seek_time: float = 0.004,
                 transfer_rate: float = 40e6, name: str = "disk"):
        if seek_time < 0 or transfer_rate <= 0:
            raise SimulationError("invalid disk parameters")
        self.sim = sim
        self.name = name
        self.seek_time = float(seek_time)
        self.transfer_rate = float(transfer_rate)
        self._arm = Resource(sim, capacity=1)
        self.bytes_read = 0
        self.bytes_written = 0
        self.request_latency = StatAccumulator(name + ".latency")

    def service_time(self, nbytes: int, sequential: bool = False) -> float:
        """Time the arm is busy for one request (no queueing)."""
        positioning = 0.0 if sequential else self.seek_time
        return positioning + nbytes / self.transfer_rate

    def read(self, nbytes: int, sequential: bool = False):
        """Process generator: read ``nbytes`` (FIFO queued)."""
        yield from self._access(nbytes, sequential)
        self.bytes_read += nbytes

    def write(self, nbytes: int, sequential: bool = False):
        """Process generator: write ``nbytes`` (FIFO queued)."""
        yield from self._access(nbytes, sequential)
        self.bytes_written += nbytes

    def _access(self, nbytes: int, sequential: bool):
        if nbytes < 0:
            raise SimulationError("transfer size must be non-negative")
        start = self.sim.now
        request = self._arm.request()
        yield request
        try:
            yield self.sim.timeout(self.service_time(nbytes, sequential))
        finally:
            self._arm.release(request)
        self.request_latency.add(self.sim.now - start)

    @property
    def queue_length(self) -> int:
        """Requests currently waiting for the arm."""
        return self._arm.queue_length

    def __repr__(self) -> str:
        return "<Disk %s %.0f MB/s>" % (self.name, self.transfer_rate / 1e6)
