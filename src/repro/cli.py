"""Command-line interface: regenerate the paper's artifacts.

Usage::

    python -m repro table1 [--scale 1.0]
    python -m repro table2 [--samples 10] [--workers 4]
    python -m repro figure1 [--samples 150] [--workers 4]
    python -m repro fleet [--sites 3] [--sessions 3] [--shards 4]
                          [--interval T] [--out flight.jsonl]
    python -m repro ablations [--workers 4]
    python -m repro overlay
    python -m repro migration
    python -m repro all
    python -m repro analyze [--path SRC ...] [--deep] [--shard]
                            [--scale] [--shard-inventory FILE]
                            [--scale-inventory FILE] [--explain RULE]
                            [--json | --sarif] [--baseline FILE]
    python -m repro sanitize {figure1,table1,table2} [--seed N]
                             [--shard-model {site,host}]
    python -m repro trace {figure1,table1,table2} [--out trace.json]
    python -m repro metrics {figure1,table1,table2} [--json]
    python -m repro record {figure1,table1,table2} [--interval T]
                           [--capacity N] [--out FILE]
    python -m repro report {figure1,table1,table2} [--interval T]
                           [--format {text,markdown}]
    python -m repro profile {figure1,table1,table2} [--seed N] [--top K]

Each experiment command prints the same tables the benchmark harness
archives; ``analyze`` runs the simlint static-analysis pass (see
``docs/static_analysis.md``) and exits non-zero on findings —
``--deep`` adds the interprocedural dataflow rules R11-R14,
``--shard`` the shard-affinity rules R15-R19 (``--shard-inventory``
also regenerates ``docs/shard-safety.md``) and ``--scale`` the
growth-dimension rules R22-R26 (``--scale-inventory`` also regenerates
``docs/scale-readiness.md``); ``--explain R22`` prints one rule's full
documentation.
``sanitize`` replays a scenario under the simsan runtime determinism
sanitizer and exits non-zero on hazards or output divergence;
``--shard-model site|host`` swaps in the shard-affinity sanitizer,
which additionally reports cross-partition event deliveries
(zero-delay ones are hazards, lookahead-covered ones informational).  ``trace``
replays a representative session life cycle for an experiment and
writes a Chrome-trace-event JSON file (load it at ui.perfetto.dev);
``metrics`` prints the metrics registry after the same run.  ``record``
replays the run with a flight recorder heartbeating every ``--interval``
simulated seconds and writes the snapshot ring as JSONL (byte-identical
per seed); ``report`` renders the same run as an operator report —
throughput, latency percentiles, utilization, SLA violations and a
per-partition rollup.  See ``docs/observability.md``.
``profile`` replays the same life cycle
under :mod:`cProfile` and prints the top functions by cumulative time
(``docs/performance.md``) — the entry point every fast path in the
model layer was justified from.

``--workers N`` fans independent replications across N processes
(``docs/performance.md``); every artifact is byte-identical for any
worker count, including the single-world ``trace``/``metrics`` runs,
which stay sequential by construction.

``--shards N`` partitions the experiment and runs up to N kernels in
parallel under the deterministic conservative protocol of
:mod:`repro.simulation.sharded` (``docs/sharding.md``).  Orthogonal to
``--workers``; every artifact is byte-identical for any shard count
and shard model.  ``fleet`` is the decomposable multi-site scenario
(one shard per site, adaptive conservative windows — ``--fixed-windows``
for the A/B schedule); ``table1``/``table2`` decompose over their
independent sample worlds (``--shard-model site`` groups per table
cell/column, ``host`` per world).  ``figure1``, the ablations and the
single-session trace/record targets are one-kernel worlds: ``--shards
> 1`` prints a notice and runs the identical inline path, or errors
out under ``--strict-shards``.
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional

from repro.core.reporting import format_table

__all__ = ["main"]


def _cmd_table1(args) -> None:
    from repro.experiments.table1 import run_table1

    scale = float(args.scale) if args.scale is not None else 1.0
    rows = run_table1(scale=scale, seed=args.seed, shards=args.shards,
                      shard_model=args.shard_model or "site")
    print(format_table(
        ["Application", "Resource", "User(s)", "Sys(s)", "Total(s)",
         "Overhead"],
        [[r.application, r.resource, "%.0f" % r.user_time,
          "%.1f" % r.sys_time, "%.0f" % r.total_time,
          "%.2f%%" % (100 * r.overhead) if r.overhead is not None
          else "N/A"] for r in rows],
        title="Table 1: macrobenchmark results"))


def _cmd_table2(args) -> None:
    from repro.experiments.table2 import run_table2

    rows = run_table2(samples=args.samples, seed=args.seed,
                      workers=args.workers, shards=args.shards,
                      shard_model=args.shard_model or "site")
    print(format_table(
        ["Start", "Storage", "Mean(s)", "Std", "Min", "Max"],
        [[r.start_mode, r.storage_mode, "%.1f" % r.mean, "%.1f" % r.std,
          "%.1f" % r.minimum, "%.1f" % r.maximum] for r in rows],
        title="Table 2: VM startup times via globusrun"))


def _cmd_figure1(args) -> None:
    from repro.experiments.figure1 import run_figure1

    results = run_figure1(samples=args.samples, seed=args.seed,
                          workers=args.workers, shards=args.shards,
                          strict_shards=args.strict_shards)
    print(format_table(
        ["Load", "Test on", "Load on", "Mean slowdown", "Std"],
        [[r.load_level, r.test_on, r.load_on, "%.3f" % r.mean_slowdown,
          "%.3f" % r.std_slowdown] for r in results],
        title="Figure 1: microbenchmark slowdown (12 scenarios)"))


def _cmd_ablations(args) -> None:
    from repro.experiments.ablations import (
        run_proxy_cache_ablation,
        run_scheduler_ablation,
        run_staging_ablation,
    )

    cache = run_proxy_cache_ablation(seed=args.seed, workers=args.workers,
                                     shards=args.shards,
                                     strict_shards=args.strict_shards)
    print(format_table(
        ["Proxy cache", "Cold(s)", "Warm mean(s)"],
        [["on" if r.proxy_cache else "off", "%.1f" % r.cold,
          "%.1f" % r.warm_mean] for r in cache],
        title="A1: proxy cache"))
    print()
    sched = run_scheduler_ablation(seed=args.seed, workers=args.workers,
                                   shards=args.shards,
                                   strict_shards=args.strict_shards)
    print(format_table(
        ["Mechanism", "VM", "Target", "Achieved"],
        [[r.mechanism, r.vm, "%.3f" % r.target, "%.3f" % r.achieved]
         for r in sched],
        title="A2: enforcement mechanisms"))
    print()
    staging = run_staging_ablation(workers=args.workers,
                                   shards=args.shards,
                                   strict_shards=args.strict_shards)
    print(format_table(
        ["Fraction", "On-demand(s)", "Staged(s)", "Winner"],
        [["%.2f" % p.fraction, "%.1f" % p.on_demand_time,
          "%.1f" % p.staged_time,
          "on-demand" if p.on_demand_wins else "staged"]
         for p in staging],
        title="A3: staging vs on-demand"))


def _cmd_fleet(args) -> None:
    from repro.experiments.fleet import run_fleet

    result = run_fleet(sites=args.sites, sessions=args.sessions,
                       seed=args.seed, shards=args.shards,
                       interval=args.interval, capacity=args.capacity,
                       adaptive=not args.fixed_windows)
    print(result.render())
    print(result.merged_metrics().to_table(
        title="Fleet metrics (merged across %d site shard(s))"
        % len(result.sites)))
    if args.out:
        recorder = result.merged_recorder()
        count = recorder.write(args.out)
        print("\nwrote %s: %d merged heartbeat(s) at %gs intervals"
              % (args.out, count, args.interval))


def _cmd_overlay(args) -> None:
    from repro.experiments.overlay_experiment import run_overlay_experiment

    trials = run_overlay_experiment(seed=args.seed)
    print(format_table(
        ["Trial", "Improved pairs", "Direct(ms)", "Overlay(ms)"],
        [[i, "%d/%d" % (t.pairs_improved, t.pairs),
          "%.1f" % (1e3 * t.mean_direct_latency),
          "%.1f" % (1e3 * t.mean_overlay_latency)]
         for i, t in enumerate(trials)],
        title="O1: overlay routing"))


def _cmd_migration(args) -> None:
    from repro.experiments.migration_experiment import (
        run_migration_experiment,
    )

    result = run_migration_experiment(seed=args.seed)
    print(format_table(
        ["Metric", "Value"],
        [["downtime", "%.1f s" % result.downtime],
         ["completion (migrated)", "%.1f s" % result.completion_time],
         ["completion (baseline)",
          "%.1f s" % result.baseline_completion_time],
         ["mounts preserved", str(result.mounts_preserved)],
         ["final host", result.final_host]],
        title="M1: migration"))


def _require_target(args) -> str:
    from repro.obs.runner import SCENARIOS

    if args.target is None:
        print("error: %s needs an experiment target (one of: %s)"
              % (args.command, ", ".join(SCENARIOS)), file=sys.stderr)
        raise SystemExit(2)
    if args.target not in SCENARIOS:
        print("error: unknown experiment %r (one of: %s)"
              % (args.target, ", ".join(SCENARIOS)), file=sys.stderr)
        raise SystemExit(2)
    return args.target


def _cmd_trace(args) -> None:
    from repro.obs.runner import trace_experiment

    target = _require_target(args)
    out = args.out or "%s-trace.json" % target
    sim, count = trace_experiment(target, out, seed=args.seed,
                                  shards=args.shards,
                                  strict_shards=args.strict_shards)
    print("wrote %s: %d trace events, %.2f simulated seconds"
          % (out, count, sim.now))


def _cmd_metrics(args) -> None:
    from repro.obs.runner import run_scenario

    target = _require_target(args)
    sim = run_scenario(target, seed=args.seed)
    if args.json:
        print(sim.metrics.to_json())
    else:
        print(sim.metrics.to_table(
            title="Metrics: %s (seed %d)" % (target, args.seed)))


def _cmd_record(args) -> None:
    from repro.obs.runner import record_experiment

    target = _require_target(args)
    out = args.out or "%s-record.jsonl" % target
    sim, _grid, recorder = record_experiment(
        target, interval=args.interval, seed=args.seed,
        capacity=args.capacity, shards=args.shards,
        strict_shards=args.strict_shards)
    count = recorder.write(out)
    print("wrote %s: %d heartbeat(s) at %gs intervals, "
          "%.2f simulated seconds"
          % (out, count, args.interval, sim.now))


def _cmd_report(args) -> None:
    from repro.obs.report import render_report
    from repro.obs.runner import record_experiment

    target = _require_target(args)
    sim, grid, recorder = record_experiment(
        target, interval=args.interval, seed=args.seed,
        capacity=args.capacity)
    print(render_report(
        sim, grid=grid, recorder=recorder,
        title="Run report: %s (seed %d)" % (target, args.seed),
        fmt=args.format), end="")


def _cmd_profile(args) -> None:
    import cProfile
    import pstats

    from repro.obs.runner import run_scenario

    target = _require_target(args)
    profiler = cProfile.Profile()
    profiler.enable()
    sim = run_scenario(target, seed=args.seed)
    profiler.disable()
    print("profile: %s, seed %d, %.2f simulated seconds, %d events"
          % (target, args.seed, sim.now, sim._next_id))
    stats = pstats.Stats(profiler, stream=sys.stdout)
    stats.sort_stats("cumulative").print_stats(args.top)


def _cmd_analyze(args) -> int:
    from repro.analysis.cli import main as simlint_main

    argv = list(args.path or [])
    if args.deep:
        argv.append("--deep")
    if args.shard:
        argv.append("--shard")
    if args.shard_inventory:
        argv.append("--shard-inventory=%s" % args.shard_inventory)
    if args.scale is not None:
        argv.append("--scale")
    if args.scale_inventory:
        argv.append("--scale-inventory=%s" % args.scale_inventory)
    if args.explain:
        argv.append("--explain=%s" % args.explain)
    if args.sarif:
        argv.append("--format=sarif")
    elif args.json:
        argv.append("--format=json")
    if args.baseline:
        argv.append("--baseline=%s" % args.baseline)
    return simlint_main(argv)


def _cmd_sanitize(args) -> int:
    from repro.obs.runner import run_scenario

    target = _require_target(args)
    if args.shard_model:
        from repro.analysis.shardsan import ShardAffinitySanitizer

        sanitizer = ShardAffinitySanitizer(shard_model=args.shard_model)
    else:
        from repro.analysis.sanitizer import DeterminismSanitizer

        sanitizer = DeterminismSanitizer()
    sim = run_scenario(target, seed=args.seed, tracer=sanitizer)
    hazards = sanitizer.finish()
    # The sanitizer must be a pure observer: replay the scenario
    # untraced and require byte-identical experiment output.
    plain = run_scenario(target, seed=args.seed)
    identical = (sim.now == plain.now  # simlint: disable=R6  bytewise
                 and sim.metrics.to_json() == plain.metrics.to_json())
    for hazard in hazards:
        print(hazard.render())
    crossings = getattr(sanitizer, "crossings", ())
    for crossing in crossings:
        print(crossing.render())
    suffix = ""
    if args.shard_model:
        suffix = (", %d cross-partition crossing(s) under the %s model"
                  % (len(crossings), args.shard_model))
    print("simsan: %s, seed %d: %d hazard(s), %.2f simulated seconds, "
          "output %s%s"
          % (target, args.seed, len(hazards), sim.now,
             "identical to untraced run" if identical
             else "DIVERGED from untraced run", suffix))
    # Crossings are informational (shardable with lookahead); only
    # hazards — including shard violations — and divergence fail.
    return 1 if hazards or not identical else 0


_COMMANDS = {
    "table1": _cmd_table1,
    "table2": _cmd_table2,
    "figure1": _cmd_figure1,
    "fleet": _cmd_fleet,
    "ablations": _cmd_ablations,
    "overlay": _cmd_overlay,
    "migration": _cmd_migration,
    "analyze": _cmd_analyze,
    "sanitize": _cmd_sanitize,
    "trace": _cmd_trace,
    "metrics": _cmd_metrics,
    "record": _cmd_record,
    "report": _cmd_report,
    "profile": _cmd_profile,
}


def build_parser() -> argparse.ArgumentParser:
    """The CLI argument parser (exposed for testing)."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Regenerate the experiments of 'A Case For Grid "
                    "Computing On Virtual Machines' (ICDCS 2003).")
    parser.add_argument("command",
                        choices=sorted(_COMMANDS) + ["all"],
                        help="which artifact to regenerate")
    parser.add_argument("target", nargs="?", default=None,
                        help="trace/metrics: which experiment scenario "
                             "(figure1, table1 or table2)")
    parser.add_argument("--seed", type=int, default=0,
                        help="root random seed (default 0)")
    parser.add_argument("--workers", type=int, default=1,
                        help="replication worker processes (default 1: "
                             "sequential; results are byte-identical "
                             "for any value)")
    parser.add_argument("--shards", type=int, default=1,
                        help="partition the experiment's worlds and run "
                             "up to N partition kernels in parallel "
                             "(default 1; results are byte-identical "
                             "for any value — see docs/sharding.md)")
    parser.add_argument("--strict-shards", action="store_true",
                        help="error out instead of running inline when "
                             "--shards > 1 hits a non-decomposable "
                             "experiment (figure1, ablations, "
                             "trace/record targets)")
    parser.add_argument("--fixed-windows", action="store_true",
                        help="fleet: disable adaptive conservative "
                             "windows (A/B the round count; artifacts "
                             "other than the rounds row are identical)")
    parser.add_argument("--sites", type=int, default=3,
                        help="fleet: number of sites (default 3)")
    parser.add_argument("--sessions", type=int, default=3,
                        help="fleet: sessions per site (default 3)")
    parser.add_argument("--out", default=None,
                        help="trace: output file "
                             "(default <target>-trace.json); "
                             "fleet: merged flight-record JSONL path")
    parser.add_argument("--scale", nargs="?", const="1", default=None,
                        metavar="FACTOR",
                        help="table1: application scale factor "
                             "(default 1.0); analyze: add the "
                             "growth-dimension pass (rules R22-R26)")
    parser.add_argument("--scale-inventory", default=None, metavar="FILE",
                        help="analyze: regenerate the scale-readiness "
                             "inventory at FILE (implies --scale)")
    parser.add_argument("--explain", default=None, metavar="RULE",
                        help="analyze: print one rule's documentation "
                             "(e.g. --explain R22) and exit")
    parser.add_argument("--samples", type=int, default=None,
                        help="table2/figure1: sample count")
    parser.add_argument("--path", action="append", default=None,
                        help="analyze: file/directory to lint (repeatable; "
                             "default: the installed repro package)")
    parser.add_argument("--json", action="store_true",
                        help="analyze: emit findings as JSON")
    parser.add_argument("--deep", action="store_true",
                        help="analyze: add the interprocedural pass "
                             "(rules R11-R14)")
    parser.add_argument("--shard", action="store_true",
                        help="analyze: add the shard-affinity pass "
                             "(rules R15-R19)")
    parser.add_argument("--shard-inventory", default=None, metavar="FILE",
                        help="analyze: regenerate the shard-safety "
                             "inventory at FILE (implies --shard)")
    parser.add_argument("--shard-model", default=None,
                        choices=("site", "host"),
                        help="table1/table2: how --shards groups the "
                             "experiment's worlds (site: coarse, one "
                             "group per cell/column; host: one group "
                             "per world, unlocking shard counts above "
                             "the site count); sanitize: also check "
                             "shard-affinity at runtime, partitioning "
                             "by site or by host")
    parser.add_argument("--sarif", action="store_true",
                        help="analyze: emit findings as SARIF 2.1.0")
    parser.add_argument("--baseline", default=None, metavar="FILE",
                        help="analyze: report only findings not in this "
                             "baseline file")
    parser.add_argument("--top", type=int, default=25,
                        help="profile: how many functions to print "
                             "(default 25)")
    parser.add_argument("--interval", type=float, default=1.0,
                        help="record/report: flight-recorder heartbeat "
                             "period in simulated seconds (default 1.0)")
    parser.add_argument("--capacity", type=int, default=512,
                        help="record/report: flight-recorder ring size "
                             "(default 512 heartbeats)")
    parser.add_argument("--format", default="text",
                        choices=("text", "markdown"),
                        help="report: output format (default text)")
    return parser


def main(argv: Optional[List[str]] = None) -> int:
    """Entry point; returns a process exit code."""
    args = build_parser().parse_args(argv)
    if args.samples is None:
        args.samples = 150 if args.command == "figure1" else 10
    if args.command == "all":
        for name in ("table1", "figure1", "table2", "ablations",
                     "overlay", "migration"):
            if name == "figure1" and args.samples == 10:
                args.samples = 150
            _COMMANDS[name](args)
            print()
        return 0
    if args.strict_shards:
        # Strict shard validation is a user-requested argument check:
        # fail with a one-line error, not a traceback.
        from repro.simulation.sharded import ShardError

        try:
            return _COMMANDS[args.command](args) or 0
        except ShardError as exc:
            print("error: %s" % exc, file=sys.stderr)
            return 2
    return _COMMANDS[args.command](args) or 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
