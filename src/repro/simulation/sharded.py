"""Sharded parallel simulation with deterministic conservative sync.

One large scenario, many cores: the grid is partitioned (by site, via
:meth:`repro.core.grid.VirtualGrid.partitions`), each partition runs
its *own* :class:`~repro.simulation.kernel.Simulation` kernel, and the
kernels synchronize with a conservative window protocol whose
lookahead is the simulated WAN latency between the partitions'
sites — exactly where cross-site events already pay delay, so the
protocol never has to roll anything back.

Protocol (a per-pair-lookahead window scheme in the YAWNS family):

1. every shard reports the time of its next event, ``n_g`` (including
   not-yet-delivered inbound messages);
2. each shard's *horizon* is ``min over senders j of n_j + L[j][g]``,
   where ``L[j][g]`` is the minimum simulated latency from any host of
   ``j`` to any host of ``g`` (:meth:`Network.min_latency`) — no
   message from ``j`` can take effect at ``g`` before its send time
   plus ``L[j][g]``, so everything below the horizon is safe to run;
3. shards run to their horizons in parallel, queueing cross-shard
   sends in per-destination channels;
4. at the barrier, channels drain: each message is stamped
   ``(send_time, sender_shard, sequence)`` and delivered sorted by
   ``(deliver_time, send_time, sender, seq)``, so the delivery order —
   and therefore every downstream event id — is a pure function of the
   message *set*, never of shard count, process placement or
   wall-clock interleaving.
5. a shard whose model declares it will send no more
   (:meth:`ShardWorld.close_outbound`) stops constraining anyone's
   horizon — the CMB "null message at +infinity" — which is what lets
   a scenario's compute tail run fully parallel, one final unbounded
   window per shard.

Determinism contract: **every artifact of a sharded run is a pure
function of (scenario, seed, partition plan)** — never of ``shards``.
``shards=1`` executes the same plan, same windows, same channel
stamps, in one process; ``shards=N`` spreads the partition kernels
over ``N`` persistent worker processes (kept warm through
:mod:`repro.simulation.workerpool`, the same warm-pool discipline as
the replication runner).  Per-shard
:class:`~repro.obs.metrics.MetricsRegistry` (partition-keyed) and
:class:`~repro.obs.recorder.FlightRecorder` instances fold through
their existing merge paths to byte-identical outputs for any shard
count; ``tests/simulation/test_sharded.py`` and ``make
shard-determinism`` hold the proofs.

A scenario that cannot be decomposed (cross-partition state touched
without a latency-paying event in between — e.g. the paper scenarios'
synchronous NFS mounts sharing one max-min flow engine) must run as a
single partition group; the engine then degenerates to the plain
single-kernel run, byte-identical by construction.  See
``docs/sharding.md``.
"""

from __future__ import annotations

import sys
from typing import (Any, Callable, Dict, Iterable, List, Mapping,
                    Optional, Sequence, Tuple)

from repro.simulation.kernel import Simulation, SimulationError

__all__ = [
    "ShardError",
    "ShardMessage",
    "ShardWorld",
    "ShardKernel",
    "ShardPlan",
    "ShardRunResult",
    "ShardedSimulation",
    "deliver_order",
    "single_group_shards",
]

_INF = float("inf")


class ShardError(SimulationError, ValueError):
    """Raised for misuse of the sharded engine or protocol violations.

    Also a :class:`ValueError`: a shard request a world cannot honor
    (``--strict-shards`` on a non-decomposable experiment) is an
    invalid argument value, and callers outside the engine can treat
    it as one without importing this module.
    """


class ShardMessage:
    """One cross-shard event in flight.

    The stamp ``(send_time, sender, seq)`` totally orders the messages
    of any one sender, and — prefixed with ``deliver_time`` — totally
    orders every message a destination shard receives: ``seq`` is
    allocated per (sender, destination) channel, so two messages can
    share a stamp prefix only by being the same message.  Payloads
    must be picklable value data (numbers, strings, tuples, dicts);
    live model objects never cross a shard boundary.
    """

    __slots__ = ("dest", "channel", "payload", "deliver_time",
                 "send_time", "sender", "seq")

    def __init__(self, dest: str, channel: str, payload: Any,
                 deliver_time: float, send_time: float, sender: str,
                 seq: int):
        self.dest = dest
        self.channel = channel
        self.payload = payload
        self.deliver_time = deliver_time
        self.send_time = send_time
        self.sender = sender
        self.seq = seq

    @property
    def sort_key(self) -> Tuple[float, float, str, int]:
        """The canonical delivery order key."""
        return (self.deliver_time, self.send_time, self.sender, self.seq)

    def __repr__(self) -> str:
        return ("<ShardMessage %s->%s/%s t=%.6g deliver=%.6g seq=%d>"
                % (self.sender, self.dest, self.channel, self.send_time,
                   self.deliver_time, self.seq))


def deliver_order(messages: Iterable[ShardMessage]) -> List[ShardMessage]:
    """Messages sorted into canonical delivery order.

    The order is a pure function of the message set: however the
    messages arrived (which round, which worker, which interleaving),
    sorting by ``(deliver_time, send_time, sender, seq)`` reproduces
    one total order, because the stamp is unique per message.
    """
    return sorted(messages, key=lambda m: m.sort_key)


class ShardWorld:
    """One partition's simulation plus its channel endpoints.

    A scenario *builder* (a module-level callable, so it can run in a
    worker process) constructs one world per partition group: build
    the group's slice of the grid against ``world.sim``, register
    inbound handlers with :meth:`on_message`, and emit cross-shard
    events with :meth:`send`.  ``lookaheads`` maps each reachable
    destination group to the minimum simulated latency toward it — the
    engine injects the plan's matrix row, and :meth:`send` enforces
    that no message undercuts it (the conservative protocol's safety
    condition).
    """

    def __init__(self, sim: Simulation, group: str,
                 lookaheads: Optional[Mapping[str, float]] = None,
                 recorder=None):
        self.sim = sim
        self.group = group
        self.lookaheads: Dict[str, float] = dict(lookaheads or {})
        for dest, value in self.lookaheads.items():
            if dest == group:
                raise ShardError("lookahead of %s toward itself" % group)
            if not value > 0.0:
                raise ShardError(
                    "lookahead %s->%s must be positive, got %r — a "
                    "zero-delay coupling means the groups belong to "
                    "one shard" % (group, dest, value))
        #: The per-shard flight recorder, if any.  Must not be started:
        #: the engine samples it at conservative window boundaries so
        #: every shard's heartbeats align (see ShardKernel), instead of
        #: a per-world heartbeat process that would keep the queue
        #: alive forever.
        self.recorder = recorder
        if recorder is not None and recorder._proc is not None:
            raise ShardError("hand the engine an unstarted recorder; "
                             "it samples at window boundaries")
        #: Optional result hook: ``collect(world) -> picklable`` runs
        #: at finalize time and its value lands in the run results
        #: under ``"data"``.
        self.collect: Optional[Callable[["ShardWorld"], Any]] = None
        self.outbound_open = True
        #: Earliest-cross-send forecast: the model's binding promise
        #: that no :meth:`send` happens before this simulated instant.
        #: Monotone (see :meth:`promise_no_send_before`); the adaptive
        #: coordinator widens other shards' windows with it.
        self.send_promise = 0.0
        self._handlers: Dict[str, Callable[["ShardWorld", ShardMessage],
                                           Any]] = {}
        self._outbox: List[ShardMessage] = []
        self._next_seq: Dict[str, int] = {}  # simlint: disable=R23  per-destination sequence counters: bounded by the shard plan's channel set
        self.sent = 0
        self.received = 0

    # -- channel API ---------------------------------------------------------

    def on_message(self, channel: str,
                   handler: Callable[["ShardWorld", ShardMessage], Any]
                   ) -> None:
        """Register the inbound handler for one named channel.

        The handler runs at the message's stamped delivery time (in
        canonical delivery order) and may spawn processes in
        ``world.sim``; it must not block.
        """
        if channel in self._handlers:
            raise ShardError("channel %s already has a handler" % channel)
        self._handlers[channel] = handler

    def send(self, dest: str, channel: str, payload: Any,
             latency: float) -> ShardMessage:
        """Emit one cross-shard event, delivered ``latency`` from now.

        ``latency`` models the full simulated delay the event pays to
        reach the destination (propagation plus any serialization the
        sender accounts for) and must be at least the plan's lookahead
        toward ``dest`` — sending below lookahead would let an event
        land inside a window the destination already executed.
        """
        if not self.outbound_open:
            raise ShardError(
                "%s closed its outbound channels; close_outbound() is a "
                "promise to send no more" % self.group)
        if self.sim.now < self.send_promise:
            raise ShardError(
                "%s sends at t=%.6g, breaking its promise of no sends "
                "before %.6g — promise_no_send_before must never "
                "overshoot the model's true next send"
                % (self.group, self.sim.now, self.send_promise))
        if dest == self.group:
            raise ShardError("cross-shard send to own group %s" % dest)
        lookahead = self.lookaheads.get(dest, _INF)
        if lookahead == _INF:
            raise ShardError("no channel from %s to %s in the shard plan"
                             % (self.group, dest))
        if latency < lookahead:
            raise ShardError(
                "send %s->%s at latency %r undercuts the lookahead %r"
                % (self.group, dest, latency, lookahead))
        seq = self._next_seq.get(dest, 0)
        self._next_seq[dest] = seq + 1
        message = ShardMessage(dest, channel, payload,
                               self.sim.now + latency, self.sim.now,
                               self.group, seq)
        self._outbox.append(message)
        self.sent += 1
        return message

    def close_outbound(self) -> None:
        """Declare that this shard will never send again.

        Monotone and binding: after the close drains, no other shard's
        horizon considers this one, which is what lets disjoint tails
        run to completion in a single unbounded window.
        """
        self.outbound_open = False

    def promise_no_send_before(self, when: float) -> None:
        """Forecast: no cross-shard send strictly before ``when``.

        The bounded cousin of :meth:`close_outbound` (which is the
        promise at +infinity).  Binding — :meth:`send` raises if the
        model breaks it — and monotone: a promise never retreats, so a
        stale (past) forecast is harmless rather than wrong.  The
        adaptive coordinator computes every other shard's window from
        ``max(next_event, promise) + lookahead`` instead of
        ``next_event + lookahead``, which is what cuts round count when
        lookahead is small relative to event density: a shard that is
        busy with internal work but knows its next send instant (a
        scheduled announce, a queued transfer's completion) lets
        everyone else run right up to that instant plus the latency
        floor.  Conservatism is preserved because a send can only
        happen at an executed event (``>=`` the shard's reported next
        event time) *and* at or after the reported promise (enforced
        above; promises only grow after reporting).
        """
        if when > self.send_promise:
            self.send_promise = when

    # -- engine side ---------------------------------------------------------

    def dispatch(self, message: ShardMessage) -> None:
        """Deliver one inbound message to its channel handler."""
        handler = self._handlers.get(message.channel)
        if handler is None:
            raise ShardError("%s has no handler for channel %r"
                             % (self.group, message.channel))
        self.received += 1
        handler(self, message)

    def drain_outbox(self) -> List[ShardMessage]:
        """Remove and return everything sent since the last drain."""
        out, self._outbox = self._outbox, []
        return out

    def result(self) -> Dict[str, Any]:
        """The picklable per-shard outcome shipped back at finalize."""
        out: Dict[str, Any] = {
            "group": self.group,
            "now": self.sim.now,
            "events": self.sim._next_id,
            "sent": self.sent,
            "received": self.received,
            "metrics": self.sim._metrics,  # None unless the world made one
        }
        if self.recorder is not None:
            out["recorder"] = self.recorder.detach()
        if self.collect is not None:
            out["data"] = self.collect(self)
        return out

    def __repr__(self) -> str:
        return "<ShardWorld %s t=%.6f out=%d>" % (
            self.group, self.sim.now, len(self._outbox))


class ShardKernel:
    """The engine's handle on one world: windows, delivery, sampling.

    Drives the world's kernel between conservative barriers.  All
    ``world.sim`` access below is the engine executing its own
    protocol on the shard it owns — model code must go through the
    channel API instead (simlint rule R21 flags bypasses).
    """

    def __init__(self, world: ShardWorld):
        self.world = world
        recorder = world.recorder
        self._interval = recorder.interval if recorder is not None else None
        # The next aligned sample instant: multiples of the interval
        # from time zero, identical on every shard by construction.
        self._next_sample = self._interval if recorder is not None else None
        # Undispatched inbound messages.  Dispatch happens per *instant*,
        # not per arrival: every message due at the drain's time goes out
        # in one stamp-ordered batch, so two same-instant messages order
        # identically whether one round carried both or two rounds
        # carried one each.
        self._inbox: List[ShardMessage] = []

    def status(self) -> Dict[str, Any]:
        """The shard's barrier report before any window has run."""
        sim = self.world.sim  # simlint: disable=R21  engine-owned shard
        return {"next": sim.peek(), "now": sim.now,
                "open": self.world.outbound_open,
                "promise": self.world.send_promise}

    def _deliver(self, messages: Sequence[ShardMessage]) -> None:
        sim = self.world.sim  # simlint: disable=R21  engine-owned shard
        for message in deliver_order(messages):
            if message.deliver_time < sim.now:
                raise ShardError(
                    "message %r arrives in %s's past (now=%.6g) — "
                    "lookahead violation" % (message, self.world.group,
                                             sim.now))
            self._inbox.append(message)
            sim.call_at(message.deliver_time, self._drain)

    def _drain(self, sim: Simulation) -> None:
        """Dispatch every inbox message due now, in stamp order.

        One drain event is scheduled per message, but the first one to
        fire at an instant flushes the whole instant (later drains at
        the same time no-op), so the dispatch order within an instant
        is the canonical stamp order however arrivals were batched
        into rounds.
        """
        now = sim.now
        # Exact float match by construction: each drain fires via
        # call_at(message.deliver_time), so ``now`` IS one of the
        # stamps, bit for bit — no arithmetic happened in between.
        due = [m for m in self._inbox if m.deliver_time == now]  # simlint: disable=R6  drain fires at the exact stamp
        if not due:
            return
        self._inbox = [m for m in self._inbox
                       if m.deliver_time != now]  # simlint: disable=R6  drain fires at the exact stamp
        for message in deliver_order(due):
            self.world.dispatch(message)

    def _advance(self, horizon: float) -> None:
        """Run the kernel to ``horizon`` (unbounded when infinite),
        sampling the flight recorder at every aligned instant crossed."""
        sim = self.world.sim  # simlint: disable=R21  engine-owned shard
        recorder = self.world.recorder
        if recorder is None:
            if horizon == _INF:
                sim.run()
            elif horizon > sim.now:
                sim.run(until=horizon)
            return
        interval = self._interval
        while True:
            bound = min(horizon, sim.peek())
            if bound == _INF:
                break
            while self._next_sample <= bound:
                sim.run(until=self._next_sample)
                recorder.sample()
                self._next_sample += interval
            if bound >= horizon:
                break
            sim.run(until=bound)
        if horizon != _INF and horizon > sim.now:
            sim.run(until=horizon)

    def round(self, directive: Mapping[str, Any]) -> Dict[str, Any]:
        """Deliver inbound messages, run one window, report back."""
        import time

        sim = self.world.sim  # simlint: disable=R21  engine-owned shard
        events_before = sim._next_id
        self._deliver(directive.get("messages", ()))
        cpu_before = time.process_time()  # simlint: disable=R2  harness timing, never reaches the model
        self._advance(directive["horizon"])
        cpu = time.process_time() - cpu_before  # simlint: disable=R2  harness timing, never reaches the model
        return {
            "next": sim.peek(),
            "now": sim.now,
            "open": self.world.outbound_open,
            "promise": self.world.send_promise,
            "out": self.world.drain_outbox(),
            "events": sim._next_id - events_before,
            "cpu": cpu,
        }

    def finalize(self, end_time: float) -> Dict[str, Any]:
        """Park the shard at the global end time and collect results.

        Runs the (drained) kernel forward so every shard's flight
        recorder samples the same aligned instants up to ``end_time``
        plus one final beat exactly at it — the alignment
        :meth:`FlightRecorder.merge` requires.
        """
        sim = self.world.sim  # simlint: disable=R21  engine-owned shard
        recorder = self.world.recorder
        if recorder is not None:
            while self._next_sample <= end_time:
                sim.run(until=self._next_sample)
                recorder.sample()
                self._next_sample += self._interval
        if end_time > sim.now:
            sim.run(until=end_time)
        if recorder is not None:
            recorder.stop(final_sample=True)
        return self.world.result()


def single_group_shards(shards: int, scenario: str = "",
                        strict: bool = False) -> int:
    """Validate a ``--shards`` request against a one-group world.

    Some artifacts build *one* entangled kernel (synchronous NFS object
    graphs inside a single sample world, sequential ablation sweeps),
    so their shard plan is the degenerate single group and the engine
    would cap the worker count at one — the same inline code path for
    every ``shards`` value, byte-identical by construction.  Drivers of
    such worlds call this instead of spinning up the engine around a
    partition that cannot exist: the request is validated, the answer
    is always one worker.

    Asking for parallelism such a world cannot deliver is worth saying
    out loud: ``shards > 1`` prints a one-line notice to stderr (stdout
    stays byte-comparable across shard counts), and raises
    :class:`ShardError` instead under ``strict`` (``--strict-shards``).
    """
    if shards < 1:
        raise ShardError("shards must be >= 1, got %r%s"
                         % (shards, " (%s)" % scenario if scenario
                            else ""))
    if shards > 1:
        detail = " (%s)" % scenario if scenario else ""
        if strict:
            raise ShardError(
                "--shards %d requested but this world is "
                "non-decomposable%s; it runs as a single kernel — drop "
                "--strict-shards to accept the inline path" % (shards,
                                                               detail))
        print("[shards] non-decomposable world%s: --shards %d runs the "  # simlint: disable=R9  operator-facing CLI notice on stderr; stdout artifacts stay byte-comparable and no model state is involved
              "single-kernel inline path" % (detail, shards),
              file=sys.stderr)
    return 1


class ShardPlan:
    """The partition groups and their pairwise lookahead matrix."""

    def __init__(self, groups: Sequence[str],
                 lookaheads: Optional[Mapping[Tuple[str, str],
                                              float]] = None):
        if not groups:
            raise ShardError("a shard plan needs at least one group")
        if len(set(groups)) != len(groups):
            raise ShardError("duplicate group labels: %r" % (groups,))
        #: Canonical group order: sorted labels.  Every fold the engine
        #: performs (message collection, result merging) walks this
        #: order, which is what makes outputs placement-invariant.
        self.groups: Tuple[str, ...] = tuple(sorted(groups))
        self._lookaheads: Dict[Tuple[str, str], float] = {}
        for (src, dst), value in dict(lookaheads or {}).items():
            if src not in self.groups or dst not in self.groups:
                raise ShardError("lookahead names unknown group: %r"
                                 % ((src, dst),))
            if src == dst:
                raise ShardError("lookahead of %s toward itself" % src)
            if not value > 0.0:
                raise ShardError(
                    "lookahead %s->%s must be positive, got %r — merge "
                    "zero-delay-coupled groups into one shard instead"
                    % (src, dst, value))
            self._lookaheads[(src, dst)] = float(value)

    def lookahead(self, src: str, dst: str) -> float:
        """Min delay of any src->dst event (``inf``: no channel)."""
        return self._lookaheads.get((src, dst), _INF)

    def row(self, src: str) -> Dict[str, float]:
        """``dest -> lookahead`` for one sender (finite entries only)."""
        return {dst: value
                for (a, dst), value in sorted(self._lookaheads.items())
                if a == src}

    @classmethod
    def single(cls, label: str = "grid") -> "ShardPlan":
        """The degenerate one-group plan of a non-decomposable world."""
        return cls([label])

    @classmethod
    def for_grid(cls, grid, model: str = "site") -> "ShardPlan":
        """The plan a :class:`~repro.core.grid.VirtualGrid` induces.

        ``model="site"`` gives one group per site with WAN-latency
        lookaheads; ``model="host"`` one group per physical machine
        with the (tighter) LAN-latency matrix — shard counts above the
        site count for single-site-heavy worlds.
        """
        return cls(grid.partition_groups(model), grid.lookaheads(model))

    @classmethod
    def uniform(cls, groups: Sequence[str], lookahead: float
                ) -> "ShardPlan":
        """All-pairs channels with one shared lookahead."""
        matrix = {(a, b): lookahead
                  for a in groups for b in groups if a != b}
        return cls(groups, matrix)

    def __repr__(self) -> str:
        return "<ShardPlan groups=%d channels=%d>" % (
            len(self.groups), len(self._lookaheads))


class _ShardHost:
    """Build-and-drive state for the shards one executor owns.

    Instantiated per run in the coordinator (local mode) and once per
    worker process (process mode); either way it answers the same
    three requests, so both transports execute identical code.
    """

    def __init__(self):
        self.kernels: Dict[str, ShardKernel] = {}

    def handle(self, request: Tuple[str, Any]) -> Any:
        op, payload = request
        if op == "build":
            return self._build(payload)
        if op == "round":
            return {group: self.kernels[group].round(payload[group])
                    for group in sorted(payload)}
        if op == "finish":
            return {group: kernel.finalize(payload["end"])
                    for group, kernel in sorted(self.kernels.items())}
        raise ShardError("unknown shard request %r" % (op,))

    def _build(self, payload: Mapping[str, Any]) -> Dict[str, Any]:
        import importlib

        self.kernels.clear()
        module_name, qualname = payload["builder"]
        builder = importlib.import_module(module_name)
        for part in qualname.split("."):
            builder = getattr(builder, part)
        status = {}
        for group in payload["groups"]:
            world = builder(group=group,
                            lookaheads=payload["lookaheads"][group],
                            **payload["kwargs"])
            if not isinstance(world, ShardWorld):
                raise ShardError("builder returned %r, not a ShardWorld"
                                 % (world,))
            if world.group != group:
                raise ShardError("builder built group %r when asked "
                                 "for %r" % (world.group, group))
            kernel = ShardKernel(world)
            self.kernels[group] = kernel
            status[group] = kernel.status()
        return status


#: The request handler worker processes serve (workerpool main).  The
#: host instance is worker-process-private engine scaffolding: each
#: build request replaces its contents wholesale, and nothing model-
#: level survives between runs except by arriving in the next build
#: message.
_WORKER_HOST = _ShardHost()  # simlint: disable=R15  worker-process-private engine state, replaced per build request


def _shard_worker_main(request):
    """Module-level worker entry (must be picklable by reference)."""
    return _WORKER_HOST.handle(request)


class ShardRunResult:
    """Everything a sharded run produced, plus engine statistics."""

    def __init__(self, plan: ShardPlan, shards: int, workers: int,
                 adaptive: bool = True):
        self.plan = plan
        self.shards = shards
        self.workers = workers
        #: Whether windows grew from earliest-cross-send forecasts.
        self.adaptive = adaptive
        #: group -> the world's :meth:`ShardWorld.result` dict.
        self.results: Dict[str, Dict[str, Any]] = {}
        self.rounds = 0
        self.messages_delivered = 0
        self.end_time = 0.0
        #: group -> events created / engine CPU-seconds consumed.
        self.events: Dict[str, int] = {}
        self.cpu: Dict[str, float] = {}
        self.coordinator_cpu = 0.0

    @property
    def total_events(self) -> int:
        return sum(self.events.values())

    def data(self, group: str) -> Any:
        """One group's ``collect`` payload."""
        return self.results[group].get("data")

    def merged_metrics(self):
        """Per-shard registries folded in canonical group order."""
        from repro.obs.metrics import MetricsRegistry

        merged = MetricsRegistry()
        for group in self.plan.groups:
            registry = self.results[group].get("metrics")
            if registry is not None:
                merged.merge(registry)
        return merged

    def merged_recorder(self):
        """Per-shard flight records folded (None when none recorded)."""
        from repro.obs.recorder import FlightRecorder

        parts = [self.results[group]["recorder"]
                 for group in self.plan.groups
                 if self.results[group].get("recorder") is not None]
        if not parts:
            return None
        return FlightRecorder.merge(parts)

    def __repr__(self) -> str:
        return ("<ShardRunResult groups=%d rounds=%d messages=%d "
                "events=%d>" % (len(self.results), self.rounds,
                                self.messages_delivered,
                                self.total_events))


class ShardedSimulation:
    """The coordinator: partition kernels under conservative windows.

    ``builder`` must be a module-level callable (it crosses process
    boundaries by name) with signature ``builder(group, lookaheads,
    **kwargs) -> ShardWorld``; ``kwargs`` must be picklable.
    ``shards`` bounds wall-clock concurrency only — one worker process
    per shard, capped at the number of partition groups; ``shards=1``
    (or a single group) runs everything in-process.  Results are a
    pure function of (builder, kwargs, plan): the round schedule,
    channel stamps, and fold orders never depend on ``shards``.
    """

    def __init__(self, builder: Callable[..., ShardWorld],
                 plan: ShardPlan, shards: int = 1,
                 kwargs: Optional[Mapping[str, Any]] = None,
                 adaptive: bool = True):
        if shards < 1:
            raise ShardError("shards must be >= 1, got %r" % (shards,))
        if not callable(builder):
            raise ShardError("builder must be callable, got %r"
                             % (builder,))
        module = getattr(builder, "__module__", None)
        qualname = getattr(builder, "__qualname__", "")
        if module is None or "<locals>" in qualname:
            raise ShardError("builder must be a module-level callable "
                             "(it crosses process boundaries by name)")
        self.builder = builder
        self.plan = plan
        self.shards = shards
        self.kwargs = dict(kwargs or {})
        self.workers = max(1, min(shards, len(plan.groups)))
        #: Grow windows from per-shard earliest-cross-send forecasts
        #: (:meth:`ShardWorld.promise_no_send_before`).  Window *sizes*
        #: change; delivered message stamps and artifacts do not, so
        #: this is on by default (``adaptive=False`` reproduces the
        #: fixed-lookahead round schedule for A/B measurement).
        self.adaptive = adaptive

    # -- placement -----------------------------------------------------------

    def _assignment(self) -> List[List[str]]:
        """Groups per worker, round-robin over canonical order."""
        buckets: List[List[str]] = [[] for _ in range(self.workers)]
        for index, group in enumerate(self.plan.groups):
            buckets[index % self.workers].append(group)
        return buckets

    def run(self) -> ShardRunResult:
        """Execute the scenario to quiescence and collect every shard."""
        import time

        result = ShardRunResult(self.plan, self.shards, self.workers,
                                adaptive=self.adaptive)
        cpu_start = time.process_time()  # simlint: disable=R2  harness timing, never reaches the model
        assignment = self._assignment()
        owner = {group: worker
                 for worker, groups in enumerate(assignment)
                 for group in groups}
        if self.workers == 1:
            host = _ShardHost()
            transports: List[Callable] = [host.handle]
        else:
            from repro.simulation.workerpool import warm_group

            group = warm_group(self.workers, _shard_worker_main)
            transports = []
        spec = {
            "builder": (self.builder.__module__,
                        self.builder.__qualname__),
            "kwargs": self.kwargs,
            "lookaheads": {g: self.plan.row(g)
                           for g in self.plan.groups},
        }

        def roundtrip(requests: List[Tuple[int, Any]]) -> List[Any]:
            if self.workers == 1:
                return [transports[0](request)
                        for _worker, request in requests]
            return group.roundtrip(requests)

        # -- build ----------------------------------------------------------
        replies = roundtrip([
            (worker, ("build", dict(spec, groups=groups)))
            for worker, groups in enumerate(assignment)])
        state: Dict[str, Dict[str, Any]] = {}
        for reply in replies:
            state.update(reply)
        for g in self.plan.groups:
            result.events[g] = 0
            result.cpu[g] = 0.0
        pending: Dict[str, List[ShardMessage]] = {g: []
                                                  for g in self.plan.groups}

        # -- conservative window rounds --------------------------------------
        while True:
            eff = {}
            for g in self.plan.groups:
                bound = state[g]["next"]
                for message in pending[g]:
                    if message.deliver_time < bound:
                        bound = message.deliver_time
                eff[g] = bound
            if all(value == _INF for value in eff.values()):
                break
            horizons = {}
            for g in self.plan.groups:
                horizon = _INF
                for j in self.plan.groups:
                    if j == g or not state[j]["open"]:
                        continue
                    lookahead = self.plan.lookahead(j, g)
                    if lookahead == _INF:
                        continue
                    # A send from j happens at an executed event (so at
                    # or after eff[j]) and never before j's reported
                    # promise (enforced in ShardWorld.send; promises
                    # only grow after reporting) — the later of the two
                    # is the conservative send floor.
                    send_floor = eff[j]
                    if self.adaptive and state[j]["promise"] > send_floor:
                        send_floor = state[j]["promise"]
                    horizon = min(horizon, send_floor + lookahead)
                horizons[g] = horizon
            runnable = [g for g in self.plan.groups
                        if pending[g] or eff[g] <= horizons[g]]
            if not runnable:
                raise ShardError(
                    "conservative deadlock: no shard can advance "
                    "(eff=%r horizons=%r)" % (eff, horizons))
            per_worker: Dict[int, Dict[str, Any]] = {}
            for g in runnable:
                directive = {"horizon": horizons[g],
                             "messages": pending[g]}
                pending[g] = []
                per_worker.setdefault(owner[g], {})[g] = directive
                result.messages_delivered += len(directive["messages"])
            replies = roundtrip(sorted((worker, ("round", directives))
                                       for worker, directives
                                       in per_worker.items()))
            for reply in replies:
                for g in sorted(reply):
                    report = reply[g]
                    state[g] = {"next": report["next"],
                                "now": report["now"],
                                "open": report["open"],
                                "promise": report["promise"]}
                    result.events[g] += report["events"]
                    result.cpu[g] += report["cpu"]
            # Collect sends in canonical group order so the pending
            # lists — and therefore next round's delivery sort inputs —
            # are identical whatever the worker interleaving was.
            outgoing: Dict[str, List[ShardMessage]] = {
                g: [] for g in self.plan.groups}
            for reply in replies:
                for g in sorted(reply):
                    outgoing[g] = reply[g]["out"]
            for g in self.plan.groups:
                for message in outgoing[g]:
                    if message.dest not in pending:
                        raise ShardError("message to unknown group %r"
                                         % (message.dest,))
                    lookahead = self.plan.lookahead(g, message.dest)
                    if message.deliver_time - message.send_time \
                            < lookahead:
                        raise ShardError(
                            "%r undercuts lookahead %r" % (message,
                                                           lookahead))
                    pending[message.dest].append(message)
            result.rounds += 1

        # -- finalize --------------------------------------------------------
        result.end_time = max(state[g]["now"] for g in self.plan.groups)
        replies = roundtrip([(worker, ("finish",
                                       {"end": result.end_time}))
                             for worker, groups in enumerate(assignment)
                             if groups])
        for reply in replies:
            result.results.update(reply)
        result.coordinator_cpu = (
            time.process_time() - cpu_start  # simlint: disable=R2  harness timing, never reaches the model
            - (sum(result.cpu.values()) if self.workers == 1 else 0.0))
        return result
