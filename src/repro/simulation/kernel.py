"""The discrete-event simulation kernel.

The kernel implements a process-interaction simulation in the style of
SimPy.  A :class:`Simulation` owns a virtual clock and a priority queue of
scheduled events.  Model code is written as generator functions that yield
:class:`Event` objects (most commonly :class:`Timeout`); the kernel resumes
the generator when the yielded event fires.

Only the features the rest of :mod:`repro` needs are implemented, which
keeps the kernel small, easy to audit, and fast:

* one-shot events with success/failure values,
* timeouts,
* processes (which are themselves events that fire on termination),
* process interruption (used to model preemption and VM suspend),
* ``all_of`` / ``any_of`` composite conditions.
"""

from __future__ import annotations

from collections import deque
from heapq import heappop, heappush
from typing import (Any, Callable, Deque, Dict, Generator, Iterable,
                    List, Optional, Tuple)

from repro.obs.tracer import NULL_TRACER, Tracer

__all__ = [
    "Event",
    "Timeout",
    "Process",
    "Condition",
    "Interrupt",
    "Simulation",
    "SimulationError",
]


class SimulationError(Exception):
    """Raised for misuse of the simulation kernel."""


class Interrupt(Exception):
    """Raised inside a process that another process interrupted.

    The ``cause`` attribute carries the value passed to
    :meth:`Process.interrupt`, letting the interrupted process decide how to
    react (e.g. a CPU model distinguishing preemption from cancellation).
    """

    def __init__(self, cause: Any = None):
        super().__init__(cause)
        self.cause = cause


#: Sentinel for "event has not yet fired".
_PENDING = object()


class Event:
    """A one-shot occurrence that processes can wait for.

    Events move through three states: *pending* (created, not triggered),
    *triggered* (scheduled to fire at the current simulation time) and
    *processed* (callbacks have run).  An event fires exactly once, either
    successfully with a value (:meth:`succeed`) or with an exception
    (:meth:`fail`).

    Events are the kernel's unit of allocation — every timeout, resource
    grant and message hand-off creates one — so the class is slotted and
    the trigger paths write the heap entry directly instead of going
    through :meth:`Simulation._enqueue_event`.
    """

    __slots__ = ("sim", "callbacks", "_value", "_ok", "_defused")

    def __init__(self, sim: "Simulation"):
        self.sim = sim
        self.callbacks: Optional[List[Callable[["Event"], None]]] = []
        self._value: Any = _PENDING
        self._ok: Optional[bool] = None
        # True once a failure has reached a waiter (a process or a
        # condition) and must not escalate out of Simulation.step().
        self._defused = False

    @property
    def triggered(self) -> bool:
        """True once the event has a value (it may not be processed yet)."""
        return self._value is not _PENDING

    @property
    def processed(self) -> bool:
        """True once the event's callbacks have run."""
        return self.callbacks is None

    @property
    def ok(self) -> Optional[bool]:
        """True if the event succeeded, False if it failed, None if pending."""
        return self._ok

    @property
    def value(self) -> Any:
        """The event's value; raises if the event has not yet fired."""
        if self._value is _PENDING:
            raise SimulationError("event value is not yet available")
        return self._value

    def succeed(self, value: Any = None) -> "Event":
        """Trigger the event successfully with ``value``."""
        if self._value is not _PENDING:
            raise SimulationError("event has already been triggered")
        self._ok = True
        self._value = value
        # Inlined _enqueue_event: this is the kernel's hottest call
        # site, and a normal-priority entry at the current time goes to
        # the O(1) immediate queue.
        sim = self.sim
        sim._immediate.append((sim.now, 2, sim._next_id, self))
        sim._next_id += 1
        if sim._tracing:
            sim.trace.on_event_scheduled(sim, self, sim.now, 2)
        return self

    def fail(self, exception: BaseException) -> "Event":
        """Trigger the event with an exception to raise in waiters."""
        if self._value is not _PENDING:
            raise SimulationError("event has already been triggered")
        if not isinstance(exception, BaseException):
            raise SimulationError("fail() requires an exception instance")
        self._ok = False
        self._value = exception
        self.sim._enqueue_event(self)
        return self

    def _process(self) -> None:
        callbacks, self.callbacks = self.callbacks, None
        if callbacks:
            for callback in callbacks:
                callback(self)

    def __repr__(self) -> str:
        state = "processed" if self.processed else (
            "triggered" if self.triggered else "pending")
        return "<%s %s at %#x>" % (type(self).__name__, state, id(self))


class Timeout(Event):
    """An event that fires after a fixed delay of simulated time.

    A timeout is born triggered — it can never be succeeded, failed or
    waited on before it is scheduled — so construction skips the
    pending-sentinel dance and writes its heap entry directly.
    """

    __slots__ = ("delay",)

    def __init__(self, sim: "Simulation", delay: float, value: Any = None):
        if delay < 0:
            raise SimulationError("timeout delay must be non-negative, got %r"
                                  % (delay,))
        self.sim = sim
        self.callbacks = []
        self._ok = True
        self._value = value
        self._defused = False
        self.delay = delay
        if delay:
            when = sim.now + delay
            heappush(sim._queue, (when, 2, sim._next_id, self))
        else:
            when = sim.now
            sim._immediate.append((when, 2, sim._next_id, self))
        sim._next_id += 1
        if sim._tracing:
            sim.trace.on_event_scheduled(sim, self, when, 2)


class Initialize(Event):
    """Internal event used to start a newly created process."""

    __slots__ = ()

    def __init__(self, sim: "Simulation", process: "Process"):
        self.sim = sim
        self.callbacks = [process._resume]
        self._ok = True
        self._value = None
        self._defused = False
        sim._enqueue_event(self, priority=Simulation._PRIORITY_HIGH)


class Process(Event):
    """A running model coroutine.

    A process wraps a generator.  Each value the generator yields must be
    an :class:`Event`; the process sleeps until that event fires and is
    then resumed with the event's value (or the event's exception is thrown
    into it).  The process object is itself an event that fires when the
    generator terminates, so processes can wait for each other.
    """

    __slots__ = ("name", "_generator", "_target")

    def __init__(self, sim: "Simulation", generator: Generator, name: str = ""):
        if not hasattr(generator, "throw"):
            raise SimulationError(
                "Process requires a generator, got %r" % (generator,))
        super().__init__(sim)
        self.name = name or getattr(generator, "__name__", "process")
        self._generator = generator
        self._target: Optional[Event] = Initialize(sim, self)
        if sim._tracing:
            sim.trace.on_process_spawned(sim, self)

    @property
    def is_alive(self) -> bool:
        """True while the underlying generator has not terminated."""
        return self._value is _PENDING

    def interrupt(self, cause: Any = None) -> None:
        """Throw :class:`Interrupt` into the process at the current time.

        Interrupting a dead process is an error; interrupting a process
        that is about to be resumed delivers the interrupt first.
        """
        if not self.is_alive:
            raise SimulationError("cannot interrupt dead process %s" % self.name)
        if self._target is not None and self._target.callbacks is not None:
            try:
                self._target.callbacks.remove(self._resume)
            except ValueError:
                pass
        interrupt_event = Event(self.sim)
        interrupt_event.callbacks.append(self._resume)
        interrupt_event._ok = False
        interrupt_event._value = Interrupt(cause)
        interrupt_event._defused = True  # never escalates to the kernel
        self.sim._enqueue_event(interrupt_event,
                                priority=Simulation._PRIORITY_URGENT)
        if self.sim._tracing:
            self.sim.trace.on_process_interrupted(self.sim, self, cause)

    def _resume(self, event: Event) -> None:
        sim = self.sim
        generator = self._generator
        sim._active_process = self
        if sim._tracing:
            sim.trace.on_process_resumed(sim, self)
        while True:
            try:
                if event._ok:
                    next_event = generator.send(event._value)
                else:
                    # Mark the failure as handled: it reached a process.
                    event._defused = True
                    next_event = generator.throw(event._value)
            except StopIteration as stop:
                self._ok = True
                self._value = stop.value
                sim._enqueue_event(self)
                if sim._tracing:
                    sim.trace.on_process_terminated(sim, self, True)
                break
            except BaseException as exc:  # model code raised
                self._ok = False
                self._value = exc
                sim._enqueue_event(self)
                if sim._tracing:
                    sim.trace.on_process_terminated(sim, self, False)
                break

            if not isinstance(next_event, Event):
                generator.throw(SimulationError(
                    "process %s yielded %r, which is not an Event"
                    % (self.name, next_event)))
                continue
            if next_event.sim is not sim:
                generator.throw(SimulationError(
                    "process %s yielded an event from another simulation"
                    % self.name))
                continue

            self._target = next_event
            callbacks = next_event.callbacks
            if callbacks is not None:
                # Event still pending or triggered-but-unprocessed: wait.
                callbacks.append(self._resume)
                break
            # Event already processed: resume immediately with its value.
            if sim._tracing:
                sim.trace.on_event_observed(sim, next_event)
            event = next_event

        sim._active_process = None

    def __repr__(self) -> str:
        return "<Process %s %s at %#x>" % (
            self.name, "alive" if self.is_alive else "dead", id(self))


class Condition(Event):
    """Composite event firing when ``count`` of its sub-events have fired.

    Used through :meth:`Simulation.all_of` and :meth:`Simulation.any_of`.
    The condition's value is a list of the values of the fired sub-events,
    in the order the sub-events were given.
    """

    __slots__ = ("_events", "_needed", "_fired", "_collected", "_index")

    def __init__(self, sim: "Simulation", events: Iterable[Event],
                 count: Optional[int] = None):
        super().__init__(sim)
        self._events = list(events)
        for event in self._events:
            if event.sim is not sim:
                raise SimulationError("condition mixes simulations")
        self._needed = len(self._events) if count is None else count
        self._fired = 0
        # Values are collected incrementally as sub-events complete
        # (keyed back to their position via the id-map), so firing a
        # wide all_of is one O(n) assembly, not a rescan of every
        # sub-event state per completion.
        self._collected: List[Any] = [_PENDING] * len(self._events)
        self._index = {id(event): i
                       for i, event in enumerate(self._events)}
        if self._needed == 0:
            self.succeed([])
            return
        for event in self._events:
            if event.callbacks is None:
                if sim._tracing:
                    sim.trace.on_event_observed(sim, event)
                self._check(event)
            else:
                event.callbacks.append(self._check)

    def _check(self, event: Event) -> None:
        if self._value is not _PENDING:
            return
        if not event._ok:
            event._defused = True
            self.fail(event._value)
            return
        self._fired += 1
        index = self._index[id(event)]
        if self._collected[index] is _PENDING:
            self._collected[index] = event._value
        if self._fired >= self._needed:
            # Assemble in given order.  Slots not collected through
            # _check still contribute when their event has triggered
            # successfully (e.g. triggered-but-unprocessed sub-events
            # of an any_of, or duplicate entries sharing one id slot).
            values = []
            for i, e in enumerate(self._events):
                v = self._collected[i]
                if v is not _PENDING:
                    values.append(v)
                elif e._value is not _PENDING and e._ok:
                    values.append(e._value)
            self.succeed(values)


class Simulation:
    """The event loop: a virtual clock plus a priority queue of events.

    Typical use::

        sim = Simulation()

        def worker(sim):
            yield sim.timeout(5.0)
            return "done"

        proc = sim.spawn(worker(sim))
        sim.run()
        assert sim.now == 5.0 and proc.value == "done"

    Internally two queues back the loop: the heap ``_queue`` for
    entries in the future (or at non-normal priority), and the deque
    ``_immediate`` for normal-priority entries at the current time —
    the path every ``Event.succeed`` takes.  Because the clock never
    moves backwards and entry ids strictly increase, ``_immediate`` is
    always sorted by the same ``(when, priority, id)`` key the heap
    uses, so merging the two heads reproduces the single-heap firing
    order exactly while the hot path pays O(1) instead of O(log n).
    """

    _PRIORITY_URGENT = 0   # interrupts
    _PRIORITY_HIGH = 1     # process initialization
    _PRIORITY_NORMAL = 2   # ordinary events

    def __init__(self, start_time: float = 0.0, seed: int = 0,
                 tracer: Optional[Tracer] = None, metrics=None):
        self.now = float(start_time)
        self.seed = int(seed)
        self._queue: List[Tuple[float, int, int, Event]] = []
        self._immediate: Deque[Tuple[float, int, int, Event]] = deque()
        self._next_id = 0
        self._active_process: Optional[Process] = None
        self._streams = None
        # ``metrics`` lets the owner install a pre-configured registry
        # (e.g. a partition-keyed one for a shard kernel) before any
        # component resolves a metric; None keeps the lazy default.
        self._metrics = metrics
        self._model_caches: Optional[Dict[str, dict]] = None
        #: The attached tracer; the shared null tracer unless one is given.
        self.trace: Tracer = tracer if tracer is not None else NULL_TRACER
        # Hot-path guard: hook sites test one boolean attribute, so an
        # untraced simulation pays a branch, never a method call.
        self._tracing = self.trace.enabled
        if self._tracing:
            self.trace.bind(self)

    @property
    def streams(self):
        """The simulation-owned RNG stream registry (lazily created).

        Components that are not handed an explicit ``rng`` derive their
        default stream from here, so a simulation's draws are a pure
        function of its ``seed`` — never of a hard-coded literal.
        """
        if self._streams is None:
            from repro.simulation.randomness import RandomStreams

            self._streams = RandomStreams(self.seed)
        return self._streams

    @property
    def metrics(self):
        """The simulation-owned metrics registry (lazily created).

        Components resolve their metric objects here once at
        construction time (``sim.metrics.counter("layer.name")``) and
        update them directly afterwards; see :mod:`repro.obs.metrics`.
        """
        if self._metrics is None:
            from repro.obs.metrics import MetricsRegistry

            self._metrics = MetricsRegistry()
        return self._metrics

    def model_cache(self, name: str) -> dict:
        """A named memo dict owned by *this* simulation (lazily created).

        Model layers that want to memoize derived state register a
        cache here instead of at module level, so the memo's lifetime
        is the simulation's — two worlds in one process (or two shards
        of one world) can never couple through it.  The same ``name``
        always returns the same dict for a given simulation; callers
        bound its size themselves.
        """
        if self._model_caches is None:
            self._model_caches = {}
        cache = self._model_caches.get(name)
        if cache is None:
            cache = self._model_caches[name] = {}
        return cache

    # -- event factories ---------------------------------------------------

    def event(self) -> Event:
        """Create a pending one-shot event."""
        return Event(self)

    def timeout(self, delay: float, value: Any = None) -> Timeout:
        """Create an event that fires ``delay`` simulated seconds from now."""
        return Timeout(self, delay, value)

    def spawn(self, generator: Generator, name: str = "") -> Process:
        """Start a new process from a generator."""
        return Process(self, generator, name=name)

    # ``process`` is a familiar alias for SimPy users.
    process = spawn

    def all_of(self, events: Iterable[Event]) -> Condition:
        """Event that fires when every event in ``events`` has fired."""
        return Condition(self, events)

    def any_of(self, events: Iterable[Event]) -> Condition:
        """Event that fires when at least one event in ``events`` has fired."""
        return Condition(self, events, count=1)

    def call_at(self, when: float, callback: Callable[["Simulation"], None]
                ) -> Event:
        """Schedule ``callback(self)`` at absolute time ``when``.

        The external injection hook of the sharded engine: a driver
        that holds the kernel between events (never from model code
        running *inside* it) plants a callback at a future instant —
        e.g. a cross-shard message delivery at its stamped time.  The
        callback fires after any already-queued event at the same
        instant (entry ids order the tie), which is exactly the
        documented delivery-order contract for shard channels.
        """
        if when < self.now:
            raise SimulationError(
                "cannot call back at %r, already at %r" % (when, self.now))
        event = Event(self)
        event._ok = True
        event._value = None
        event.callbacks.append(lambda _event: callback(self))
        self._enqueue_event(event, delay=when - self.now)
        return event

    @property
    def active_process(self) -> Optional[Process]:
        """The process currently being resumed, if any."""
        return self._active_process

    # -- scheduling --------------------------------------------------------

    def _enqueue_event(self, event: Event, delay: float = 0.0,
                       priority: int = _PRIORITY_NORMAL) -> None:
        when = self.now + delay
        if delay == 0.0 and priority == 2:
            self._immediate.append((when, 2, self._next_id, event))
        else:
            heappush(self._queue, (when, priority, self._next_id, event))
        self._next_id += 1
        if self._tracing:
            self.trace.on_event_scheduled(self, event, when, priority)

    def peek(self) -> float:
        """Time of the next scheduled event, or ``inf`` if none remain."""
        if self._immediate:
            if self._queue and self._queue[0] < self._immediate[0]:
                return self._queue[0][0]
            return self._immediate[0][0]
        return self._queue[0][0] if self._queue else float("inf")

    def _pop_next(self) -> Tuple[float, int, int, Event]:
        """Remove and return the globally next queue entry."""
        immediate = self._immediate
        if immediate:
            queue = self._queue
            if queue and queue[0] < immediate[0]:
                return heappop(queue)
            return immediate.popleft()
        if self._queue:
            return heappop(self._queue)
        raise SimulationError("no events to step")

    def step(self) -> None:
        """Process the single next event (advancing the clock to it)."""
        when, _priority, _eid, event = self._pop_next()
        if self._tracing:
            if when > self.now:
                self.trace.on_clock_advanced(self, self.now, when)
            self.trace.on_event_fired(self, event)
        self.now = when
        event._process()
        if event._ok is False and not event._defused:
            # An uncaught failure with no waiter: escalate to the caller of
            # run() so that model bugs never pass silently.
            raise event._value

    def _run_fast(self, until: Optional[float]) -> None:
        """The drain loop with :meth:`step` inlined and lookups hoisted.

        Behaviourally identical to calling ``step()`` per event; used
        only when ``self`` is exactly a :class:`Simulation` so that
        subclasses overriding ``step``/``_enqueue_event`` keep their
        semantics through :meth:`run`.
        """
        queue = self._queue
        immediate = self._immediate
        tracing = self._tracing
        trace = self.trace
        while True:
            if immediate:
                if queue and queue[0] < immediate[0]:
                    if until is not None and queue[0][0] > until:
                        break
                    entry = heappop(queue)
                else:
                    # Immediate entries sit at (a past) sim.now, which a
                    # bounded run's precondition keeps <= until.
                    entry = immediate.popleft()
            elif queue:
                if until is not None and queue[0][0] > until:
                    break
                entry = heappop(queue)
            else:
                break
            when = entry[0]
            event = entry[3]
            if tracing:
                if when > self.now:
                    trace.on_clock_advanced(self, self.now, when)
                trace.on_event_fired(self, event)
            self.now = when
            event._process()
            if event._ok is False and not event._defused:
                raise event._value

    def run(self, until: Optional[float] = None) -> None:
        """Run until the queue drains or the clock would pass ``until``.

        When ``until`` is given the clock is advanced to exactly ``until``
        even if no event falls on it, which makes repeated bounded runs
        composable.
        """
        if until is not None and until < self.now:
            raise SimulationError(
                "cannot run until %r, already at %r" % (until, self.now))
        if type(self) is Simulation:
            self._run_fast(until)
        else:
            while self._queue or self._immediate:
                if until is not None and self.peek() > until:
                    break
                self.step()
        if until is not None:
            self.now = max(self.now, until)

    def run_until_complete(self, process: Process) -> Any:
        """Run until ``process`` terminates and return (or raise) its value."""
        if type(self) is Simulation:
            queue = self._queue
            immediate = self._immediate
            tracing = self._tracing
            trace = self.trace
            while process._value is _PENDING:
                if immediate:
                    if queue and queue[0] < immediate[0]:
                        entry = heappop(queue)
                    else:
                        entry = immediate.popleft()
                elif queue:
                    entry = heappop(queue)
                else:
                    raise SimulationError(
                        "deadlock: %s is waiting but no events remain"
                        % process)
                when = entry[0]
                event = entry[3]
                if tracing:
                    if when > self.now:
                        trace.on_clock_advanced(self, self.now, when)
                    trace.on_event_fired(self, event)
                self.now = when
                event._process()
                if event._ok is False and not event._defused:
                    raise event._value
        else:
            while process.is_alive:
                if not self._queue and not self._immediate:
                    raise SimulationError(
                        "deadlock: %s is waiting but no events remain"
                        % process)
                self.step()
        # The caller consumes the outcome here, so the process's own
        # termination event (possibly still queued) must not escalate.
        process._defused = True
        if process._ok:
            return process._value
        raise process._value

    def __repr__(self) -> str:
        return "<Simulation t=%.6f, %d queued>" % (
            self.now, len(self._queue) + len(self._immediate))
