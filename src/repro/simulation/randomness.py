"""Reproducible random-number streams.

Distributed-systems simulations are only debuggable when every run is
reproducible and when adding a new random consumer does not perturb the
draws of existing ones.  :class:`RandomStreams` therefore hands each named
component its own independent generator, derived deterministically from a
root seed and the component's name.
"""

from __future__ import annotations

import hashlib
import random
from typing import Dict

import numpy as np

__all__ = ["RandomStreams"]


class RandomStreams:
    """A factory of named, independent, reproducible RNG streams.

    >>> streams = RandomStreams(seed=42)
    >>> a = streams.stream("disk")       # stdlib random.Random
    >>> b = streams.numpy_stream("load") # numpy Generator
    >>> streams.stream("disk") is a      # same name -> same stream
    True
    """

    def __init__(self, seed: int = 0):
        self.seed = int(seed)
        self._streams: Dict[str, random.Random] = {}  # simlint: disable=R23  named streams must persist for replay determinism; one small Random per name, freed with the world
        self._numpy_streams: Dict[str, np.random.Generator] = {}

    def _derive(self, name: str) -> int:
        digest = hashlib.sha256(
            ("%d/%s" % (self.seed, name)).encode("utf-8")).digest()
        return int.from_bytes(digest[:8], "big")

    def stream(self, name: str) -> random.Random:
        """Return the stdlib ``random.Random`` stream for ``name``."""
        if name not in self._streams:
            self._streams[name] = random.Random(self._derive(name))
        return self._streams[name]

    def numpy_stream(self, name: str) -> np.random.Generator:
        """Return the numpy ``Generator`` stream for ``name``."""
        if name not in self._numpy_streams:
            self._numpy_streams[name] = np.random.default_rng(
                self._derive(name))
        return self._numpy_streams[name]

    def child(self, name: str) -> "RandomStreams":
        """Derive an independent sub-factory (for nested components)."""
        return RandomStreams(self._derive("child/" + name))

    def spawn_key(self, name: str) -> int:
        """A deterministic 64-bit child seed for ``name``.

        This is how replication runners derive one seed per replication:
        the key is a pure function of the root seed and the replication's
        name/index — never of worker identity, pool size or scheduling
        order — so fanning replications across processes cannot perturb
        any draw (see :mod:`repro.experiments.runner`).
        """
        return self._derive("spawn/" + name)
