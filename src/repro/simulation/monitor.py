"""Measurement probes: time series and summary statistics.

Two collectors are provided:

* :class:`StatAccumulator` — streaming mean / variance / min / max over a
  set of scalar samples (Welford's algorithm, numerically stable);
* :class:`TimeSeriesMonitor` — timestamped samples with time-weighted
  averaging, used for utilization and queue-length traces that feed the
  RPS-style predictors in :mod:`repro.prediction`.
"""

from __future__ import annotations

import itertools
import math
from typing import Callable, List, Optional, Sequence, Tuple

__all__ = ["StatAccumulator", "TimeSeriesMonitor", "set_merge_audit"]

#: Optional audit hook ``(target, part) -> None`` consulted at the top
#: of every :meth:`StatAccumulator.merge`.  Installed by the runtime
#: determinism sanitizer (simsan) to check canonical fold order; None
#: (the default) costs one module-global load per merge.  One slot: a
#: second installer replaces the first.
#: Deliberately process-global: simsan instruments the whole process,
#: and the hook only *observes* merges (it never feeds a statistic), so
#: it cannot couple shards.
_merge_audit: Optional[Callable] = None  # simlint: disable=R15  observer hook; never feeds model state


def set_merge_audit(hook: Optional[Callable]) -> None:
    """Install (or with None, remove) the accumulator merge audit hook."""
    global _merge_audit
    _merge_audit = hook


class StatAccumulator:
    """Streaming summary statistics over scalar samples."""

    __slots__ = ("name", "count", "_mean", "_m2", "minimum", "maximum",
                 "_seq")

    #: Process-wide creation counter; ``_seq`` gives every accumulator a
    #: stable creation rank so the merge audit can verify that parts are
    #: folded in the order they were created (the replication runner's
    #: canonical task order).  Never feeds into any statistic.
    #: Ranks are audit metadata only (and cross process boundaries as
    #: None, see ``__getstate__``), so sharing the counter process-wide
    #: cannot couple shards.
    _creation_counter = itertools.count()  # simlint: disable=R15  audit-only rank source; never feeds a statistic

    def __init__(self, name: str = ""):
        self.name = name
        self.count = 0
        self._mean = 0.0
        self._m2 = 0.0
        self.minimum: Optional[float] = None
        self.maximum: Optional[float] = None
        self._seq: Optional[int] = next(StatAccumulator._creation_counter)

    def __getstate__(self):
        # ``_seq`` ranks creations within ONE process; a pickled copy
        # (a pool worker's part coming home) carries no comparable rank,
        # so it crosses the boundary as None and the merge audit skips
        # it rather than comparing apples to oranges.
        return {slot: getattr(self, slot) for slot in self.__slots__
                if slot != "_seq"}

    def __setstate__(self, state) -> None:
        for slot, value in state.items():
            setattr(self, slot, value)
        self._seq = None

    def add(self, value: float) -> None:
        """Record one sample."""
        value = float(value)
        self.count += 1
        delta = value - self._mean
        self._mean += delta / self.count
        self._m2 += delta * (value - self._mean)
        if self.minimum is None or value < self.minimum:
            self.minimum = value
        if self.maximum is None or value > self.maximum:
            self.maximum = value

    def extend(self, values: Sequence[float]) -> None:
        """Record many samples."""
        for value in values:
            self.add(value)

    def merge(self, other: "StatAccumulator") -> "StatAccumulator":
        """Fold another accumulator's samples into this one, in place.

        Uses the parallel-variance combination (Chan et al.), so the
        result is exactly what a single accumulator over both sample
        sets would hold — this is how per-layer metrics collected by
        independent components are combined into one summary.  Returns
        ``self`` for chaining.
        """
        if _merge_audit is not None:
            _merge_audit(self, other)
        if other.count == 0:
            return self
        if self.count == 0:
            self.count = other.count
            self._mean = other._mean
            self._m2 = other._m2
            self.minimum = other.minimum
            self.maximum = other.maximum
            return self
        total = self.count + other.count
        delta = other._mean - self._mean
        self._m2 += other._m2 \
            + delta * delta * self.count * other.count / total
        self._mean += delta * other.count / total
        self.count = total
        if other.minimum is not None and other.minimum < self.minimum:
            self.minimum = other.minimum
        if other.maximum is not None and other.maximum > self.maximum:
            self.maximum = other.maximum
        return self

    @property
    def mean(self) -> float:
        """Sample mean (0.0 when empty)."""
        return self._mean if self.count else 0.0

    @property
    def variance(self) -> float:
        """Unbiased sample variance (0.0 with fewer than two samples)."""
        if self.count < 2:
            return 0.0
        return self._m2 / (self.count - 1)

    @property
    def stdev(self) -> float:
        """Unbiased sample standard deviation."""
        return math.sqrt(self.variance)

    def summary(self) -> dict:
        """A plain-dict snapshot, convenient for table printing."""
        return {
            "name": self.name,
            "count": self.count,
            "mean": self.mean,
            "stdev": self.stdev,
            "min": self.minimum,
            "max": self.maximum,
        }

    def __repr__(self) -> str:
        return ("<StatAccumulator %s n=%d mean=%.4g std=%.4g>"
                % (self.name, self.count, self.mean, self.stdev))


class TimeSeriesMonitor:
    """Timestamped scalar samples with time-weighted aggregation.

    Samples represent the value of a quantity *from* the sample time until
    the next sample (a right-continuous step function), which is the
    natural shape for utilizations, levels and queue lengths.
    """

    __slots__ = ("name", "times", "values")

    def __init__(self, name: str = ""):
        self.name = name
        self.times: List[float] = []
        self.values: List[float] = []

    def record(self, time: float, value: float) -> None:
        """Append a sample; times must be non-decreasing."""
        if self.times and time < self.times[-1]:
            raise ValueError("samples must be recorded in time order")
        self.times.append(float(time))
        self.values.append(float(value))

    def __len__(self) -> int:
        return len(self.times)

    @property
    def last_value(self) -> Optional[float]:
        """Most recent sample value, or None when empty."""
        return self.values[-1] if self.values else None

    def value_at(self, time: float) -> Optional[float]:
        """The step-function value at ``time`` (None before first sample)."""
        if not self.times or time < self.times[0]:
            return None
        # Binary search for rightmost sample with times[i] <= time.
        lo, hi = 0, len(self.times)
        while lo < hi:
            mid = (lo + hi) // 2
            if self.times[mid] <= time:
                lo = mid + 1
            else:
                hi = mid
        return self.values[lo - 1]

    def time_average(self, start: Optional[float] = None,
                     end: Optional[float] = None) -> float:
        """Time-weighted mean of the step function over [start, end]."""
        if len(self.times) == 0:
            return 0.0
        if start is None:
            start = self.times[0]
        if end is None:
            end = self.times[-1]
        if end <= start:
            return self.value_at(start) or 0.0
        total = 0.0
        for i, t in enumerate(self.times):
            seg_start = max(t, start)
            seg_end = self.times[i + 1] if i + 1 < len(self.times) else end
            seg_end = min(seg_end, end)
            if seg_end > seg_start:
                total += self.values[i] * (seg_end - seg_start)
        return total / (end - start)

    def window(self, start: float, end: float) -> List[Tuple[float, float]]:
        """The (time, value) samples falling inside [start, end]."""
        return [(t, v) for t, v in zip(self.times, self.values)
                if start <= t <= end]

    def merge(self, other: "TimeSeriesMonitor") -> "TimeSeriesMonitor":
        """Append another monitor's later samples onto this one, in place.

        Time series partition by *time*, not by sample set: a shard
        handing back its span of a series must start at or after this
        one's last sample, mirroring the ``record`` ordering rule.
        Overlapping series raise rather than interleave silently.
        Returns ``self`` for chaining.
        """
        if _merge_audit is not None:
            _merge_audit(self, other)
        if other.times:
            if self.times and other.times[0] < self.times[-1]:
                raise ValueError(
                    "cannot merge overlapping time series: %s restarts "
                    "at %g before %g" % (other.name or "part",
                                         other.times[0], self.times[-1]))
            self.times.extend(other.times)
            self.values.extend(other.values)
        return self

    def __repr__(self) -> str:
        return "<TimeSeriesMonitor %s n=%d>" % (self.name, len(self.times))
