"""Measurement probes: time series and summary statistics.

Two collectors are provided:

* :class:`StatAccumulator` — streaming mean / variance / min / max over a
  set of scalar samples (Welford's algorithm, numerically stable);
* :class:`TimeSeriesMonitor` — timestamped samples with time-weighted
  averaging, used for utilization and queue-length traces that feed the
  RPS-style predictors in :mod:`repro.prediction`.
"""

from __future__ import annotations

import itertools
import math
from typing import Callable, List, Optional, Sequence, Tuple

__all__ = ["StatAccumulator", "TimeSeriesMonitor", "set_merge_audit"]

#: Optional audit hook ``(target, part) -> None`` consulted at the top
#: of every :meth:`StatAccumulator.merge`.  Installed by the runtime
#: determinism sanitizer (simsan) to check canonical fold order; None
#: (the default) costs one module-global load per merge.  One slot: a
#: second installer replaces the first.
#: Deliberately process-global: simsan instruments the whole process,
#: and the hook only *observes* merges (it never feeds a statistic), so
#: it cannot couple shards.
_merge_audit: Optional[Callable] = None  # simlint: disable=R15  observer hook; never feeds model state


def set_merge_audit(hook: Optional[Callable]) -> None:
    """Install (or with None, remove) the accumulator merge audit hook."""
    global _merge_audit
    _merge_audit = hook


class StatAccumulator:
    """Streaming summary statistics over scalar samples."""

    __slots__ = ("name", "count", "_mean", "_m2", "minimum", "maximum",
                 "_seq")

    #: Process-wide creation counter; ``_seq`` gives every accumulator a
    #: stable creation rank so the merge audit can verify that parts are
    #: folded in the order they were created (the replication runner's
    #: canonical task order).  Never feeds into any statistic.
    #: Ranks are audit metadata only (and cross process boundaries as
    #: None, see ``__getstate__``), so sharing the counter process-wide
    #: cannot couple shards.
    _creation_counter = itertools.count()  # simlint: disable=R15  audit-only rank source; never feeds a statistic

    def __init__(self, name: str = ""):
        self.name = name
        self.count = 0
        self._mean = 0.0
        self._m2 = 0.0
        self.minimum: Optional[float] = None
        self.maximum: Optional[float] = None
        self._seq: Optional[int] = next(StatAccumulator._creation_counter)

    def __getstate__(self):
        # ``_seq`` ranks creations within ONE process; a pickled copy
        # (a pool worker's part coming home) carries no comparable rank,
        # so it crosses the boundary as None and the merge audit skips
        # it rather than comparing apples to oranges.
        return {slot: getattr(self, slot) for slot in self.__slots__
                if slot != "_seq"}

    def __setstate__(self, state) -> None:
        for slot, value in state.items():
            setattr(self, slot, value)
        self._seq = None

    def add(self, value: float) -> None:
        """Record one sample."""
        value = float(value)
        self.count += 1
        delta = value - self._mean
        self._mean += delta / self.count
        self._m2 += delta * (value - self._mean)
        if self.minimum is None or value < self.minimum:
            self.minimum = value
        if self.maximum is None or value > self.maximum:
            self.maximum = value

    def extend(self, values: Sequence[float]) -> None:
        """Record many samples."""
        for value in values:
            self.add(value)

    def merge(self, other: "StatAccumulator") -> "StatAccumulator":
        """Fold another accumulator's samples into this one, in place.

        Uses the parallel-variance combination (Chan et al.), so the
        result is exactly what a single accumulator over both sample
        sets would hold — this is how per-layer metrics collected by
        independent components are combined into one summary.  Returns
        ``self`` for chaining.
        """
        if _merge_audit is not None:
            _merge_audit(self, other)
        if other.count == 0:
            return self
        if self.count == 0:
            self.count = other.count
            self._mean = other._mean
            self._m2 = other._m2
            self.minimum = other.minimum
            self.maximum = other.maximum
            return self
        total = self.count + other.count
        delta = other._mean - self._mean
        self._m2 += other._m2 \
            + delta * delta * self.count * other.count / total
        self._mean += delta * other.count / total
        self.count = total
        if other.minimum is not None and other.minimum < self.minimum:
            self.minimum = other.minimum
        if other.maximum is not None and other.maximum > self.maximum:
            self.maximum = other.maximum
        return self

    @property
    def mean(self) -> float:
        """Sample mean (0.0 when empty)."""
        return self._mean if self.count else 0.0

    @property
    def variance(self) -> float:
        """Unbiased sample variance (0.0 with fewer than two samples)."""
        if self.count < 2:
            return 0.0
        return self._m2 / (self.count - 1)

    @property
    def stdev(self) -> float:
        """Unbiased sample standard deviation."""
        return math.sqrt(self.variance)

    def summary(self) -> dict:
        """A plain-dict snapshot, convenient for table printing."""
        return {
            "name": self.name,
            "count": self.count,
            "mean": self.mean,
            "stdev": self.stdev,
            "min": self.minimum,
            "max": self.maximum,
        }

    def __repr__(self) -> str:
        return ("<StatAccumulator %s n=%d mean=%.4g std=%.4g>"
                % (self.name, self.count, self.mean, self.stdev))


class TimeSeriesMonitor:
    """Timestamped scalar samples with time-weighted aggregation.

    Samples represent the value of a quantity *from* the sample time until
    the next sample (a right-continuous step function), which is the
    natural shape for utilizations, levels and queue lengths.

    By default every sample is retained.  Passing ``window`` (simulated
    seconds) and/or ``max_samples`` bounds memory: old samples are
    evicted as new ones arrive, but their time-weighted integral is
    carried forward, so :meth:`time_average` over the full series stays
    *exact* across evictions — only point queries (:meth:`value_at`,
    :meth:`samples_between`) lose access to the evicted region.  The
    sample governing the start of the retention window is always kept,
    so window queries ``time_average(now - window, now)`` remain exact
    too.  Passing ``window=None`` explicitly declares an intentionally
    unbounded series (simlint rule R20 flags constructions that make no
    choice at all in model code).
    """

    __slots__ = ("name", "times", "values", "window", "max_samples",
                 "_dropped_integral", "_dropped_count", "_origin_time")

    def __init__(self, name: str = "", window: Optional[float] = None,
                 max_samples: Optional[int] = None):
        if window is not None and window <= 0:
            raise ValueError("window must be positive (or None)")
        if max_samples is not None and max_samples < 1:
            raise ValueError("max_samples must be >= 1 (or None)")
        self.name = name
        self.window = window
        self.max_samples = max_samples
        self.times: List[float] = []
        self.values: List[float] = []
        #: Time-weighted integral of the evicted prefix, covering
        #: [origin_time, times[0]].  Accumulated one segment at a time
        #: in time order — the same float-addition chain a full
        #: in-order sweep would perform — so full-range averages are
        #: bit-identical to the unbounded series.
        self._dropped_integral = 0.0
        self._dropped_count = 0
        self._origin_time: Optional[float] = None

    def record(self, time: float, value: float) -> None:
        """Append a sample; times must be non-decreasing."""
        if self.times and time < self.times[-1]:
            raise ValueError("samples must be recorded in time order")
        if self._origin_time is None:
            self._origin_time = float(time)
        self.times.append(float(time))
        self.values.append(float(value))
        if self.window is not None or self.max_samples is not None:
            self._trim()

    def _trim(self) -> None:
        """Evict the prefix outside the retention policy, keeping the
        boundary sample that governs the window start."""
        times = self.times
        values = self.values
        n = len(times)
        k = 0
        if self.window is not None:
            horizon = times[-1] - self.window
            while k + 1 < n and times[k + 1] <= horizon:
                self._dropped_integral += values[k] * (times[k + 1]
                                                       - times[k])
                k += 1
        if self.max_samples is not None:
            while n - k > self.max_samples:
                self._dropped_integral += values[k] * (times[k + 1]
                                                       - times[k])
                k += 1
        if k:
            del times[:k]
            del values[:k]
            self._dropped_count += k

    def __len__(self) -> int:
        return len(self.times)

    @property
    def total_count(self) -> int:
        """Samples ever recorded, including evicted ones."""
        return len(self.times) + self._dropped_count

    @property
    def dropped_count(self) -> int:
        """Samples evicted under the retention policy."""
        return self._dropped_count

    @property
    def origin_time(self) -> Optional[float]:
        """Time of the first sample ever recorded (survives eviction)."""
        return self._origin_time

    @property
    def last_value(self) -> Optional[float]:
        """Most recent sample value, or None when empty."""
        return self.values[-1] if self.values else None

    def value_at(self, time: float) -> Optional[float]:
        """The step-function value at ``time`` (None before first sample)."""
        if not self.times or time < self.times[0]:
            return None
        # Binary search for rightmost sample with times[i] <= time.
        lo, hi = 0, len(self.times)
        while lo < hi:
            mid = (lo + hi) // 2
            if self.times[mid] <= time:
                lo = mid + 1
            else:
                hi = mid
        return self.values[lo - 1]

    def time_average(self, start: Optional[float] = None,
                     end: Optional[float] = None) -> float:
        """Time-weighted mean of the step function over [start, end].

        Exact even after window evictions, as long as the queried range
        does not *begin inside* the evicted region: full-range averages
        (``start=None`` or ``start <= origin_time``) use the carried
        integral of the evicted prefix, and window queries starting at
        or after the retained boundary sample use the live samples.  A
        start strictly inside the evicted region raises ``ValueError``
        rather than silently approximating.
        """
        if len(self.times) == 0:
            return 0.0
        if start is None:
            start = self._origin_time
        if end is None:
            end = self.times[-1]
        if end <= start:
            return self.value_at(start) or 0.0
        total = 0.0
        if self._dropped_count:
            if start <= self._origin_time:
                if end <= self.times[0]:
                    raise ValueError(
                        "%s: [%g, %g] ends inside the evicted region"
                        % (self.name or "monitor", start, end))
                total = self._dropped_integral
            elif start < self.times[0]:
                raise ValueError(
                    "%s: start %g falls inside the evicted region "
                    "(retained history begins at %g)"
                    % (self.name or "monitor", start, self.times[0]))
        for i, t in enumerate(self.times):
            seg_start = max(t, start)
            seg_end = self.times[i + 1] if i + 1 < len(self.times) else end
            seg_end = min(seg_end, end)
            if seg_end > seg_start:
                total += self.values[i] * (seg_end - seg_start)
        return total / (end - start)

    def samples_between(self, start: float,
                        end: float) -> List[Tuple[float, float]]:
        """The retained (time, value) samples falling inside [start, end]."""
        return [(t, v) for t, v in zip(self.times, self.values)
                if start <= t <= end]

    def merge(self, other: "TimeSeriesMonitor") -> "TimeSeriesMonitor":
        """Append another monitor's later samples onto this one, in place.

        Time series partition by *time*, not by sample set: a shard
        handing back its span of a series must start at or after this
        one's last sample, mirroring the ``record`` ordering rule.
        Overlapping series raise rather than interleave silently.

        A part that has itself already evicted samples can only be
        merged into an *empty* monitor (its carried integral is only
        meaningful from its own origin), in which case the full
        retention state transfers.  Merging into a windowed monitor
        re-applies the retention policy afterwards.  Returns ``self``
        for chaining.
        """
        if _merge_audit is not None:
            _merge_audit(self, other)
        if other._dropped_count:
            if self.times or self._dropped_count:
                raise ValueError(
                    "cannot merge %s, which has already evicted samples, "
                    "into a non-empty monitor" % (other.name or "part"))
            self._origin_time = other._origin_time
            self._dropped_integral = other._dropped_integral
            self._dropped_count = other._dropped_count
            self.times.extend(other.times)
            self.values.extend(other.values)
        elif other.times:
            if self.times and other.times[0] < self.times[-1]:
                raise ValueError(
                    "cannot merge overlapping time series: %s restarts "
                    "at %g before %g" % (other.name or "part",
                                         other.times[0], self.times[-1]))
            if self._origin_time is None:
                self._origin_time = other._origin_time
            self.times.extend(other.times)
            self.values.extend(other.values)
        if self.times and (self.window is not None
                           or self.max_samples is not None):
            self._trim()
        return self

    def __repr__(self) -> str:
        return "<TimeSeriesMonitor %s n=%d>" % (self.name, len(self.times))
