"""Queued resources for the simulation kernel.

Three classic synchronization primitives:

* :class:`Resource` — a server with fixed capacity and a FIFO request
  queue (used for disks, NICs, RPC servers, ...);
* :class:`Store` — an unbounded (or bounded) queue of Python objects
  (used for message channels and request queues);
* :class:`Container` — a continuous quantity with put/get (used for
  buffer pools and token buckets).
"""

from __future__ import annotations

from collections import deque
from typing import Any, Callable, Deque, Optional

from repro.simulation.kernel import Event, Simulation, SimulationError

__all__ = ["Request", "Resource", "Store", "Container"]


class Request(Event):
    """A pending or granted claim on a :class:`Resource` slot."""

    __slots__ = ("resource", "owner")

    def __init__(self, resource: "Resource"):
        super().__init__(resource.sim)
        self.resource = resource
        #: The process that issued the request (None outside a process).
        #: Captured at creation — a queued request may be *granted* while
        #: some other process is active (the releaser's wake-up loop).
        self.owner = resource.sim.active_process


class _StorePut(Event):
    """A pending or completed ``Store.put``, carrying its item."""

    __slots__ = ("item",)


class _ContainerOp(Event):
    """A pending or completed ``Container`` put/get, carrying its amount."""

    __slots__ = ("amount",)


class Resource:
    """A fixed-capacity resource with FIFO granting.

    Usage from a process::

        request = disk_arm.request()
        yield request
        try:
            yield sim.timeout(service_time)
        finally:
            disk_arm.release(request)
    """

    __slots__ = ("sim", "capacity", "_users", "_waiting")

    def __init__(self, sim: Simulation, capacity: int = 1):
        if capacity < 1:
            raise SimulationError("resource capacity must be >= 1")
        self.sim = sim
        self.capacity = capacity
        self._users: set = set()
        self._waiting: Deque[Request] = deque()

    @property
    def in_use(self) -> int:
        """Number of currently granted requests."""
        return len(self._users)

    @property
    def queue_length(self) -> int:
        """Number of requests waiting for a slot."""
        return len(self._waiting)

    def request(self) -> Request:
        """Claim a slot; the returned event fires when the slot is granted."""
        req = Request(self)
        if len(self._users) < self.capacity:
            self._users.add(req)
            req.succeed()
            if self.sim._tracing:
                self.sim.trace.on_resource_acquired(self.sim, self, req)
        else:
            self._waiting.append(req)
        return req

    def release(self, request: Request) -> None:
        """Return a previously granted slot, waking the next waiter."""
        if request in self._users:
            self._users.remove(request)
            if self.sim._tracing:
                self.sim.trace.on_resource_released(self.sim, self, request)
        elif request in self._waiting:
            # Cancelling a request that was never granted.
            self._waiting.remove(request)
            return
        else:
            raise SimulationError("release of a request not held")
        while self._waiting and len(self._users) < self.capacity:
            nxt = self._waiting.popleft()
            self._users.add(nxt)
            nxt.succeed()
            if self.sim._tracing:
                self.sim.trace.on_resource_acquired(self.sim, self, nxt)


class Store:
    """A queue of arbitrary items with blocking ``get``.

    ``put`` succeeds immediately unless a ``capacity`` bound is hit, in
    which case the put event waits for space.  Items are delivered to
    getters in FIFO order.
    """

    __slots__ = ("sim", "capacity", "items", "_getters", "_putters")

    def __init__(self, sim: Simulation, capacity: Optional[int] = None):
        if capacity is not None and capacity < 1:
            raise SimulationError("store capacity must be >= 1 or None")
        self.sim = sim
        self.capacity = capacity
        self.items: Deque[Any] = deque()
        self._getters: Deque[Event] = deque()
        self._putters: Deque[Event] = deque()

    def __len__(self) -> int:
        return len(self.items)

    def put(self, item: Any) -> Event:
        """Add ``item``; the returned event fires when the item is stored."""
        event = _StorePut(self.sim)
        event.item = item
        if self._putters or (self.capacity is not None
                             and len(self.items) >= self.capacity):
            self._putters.append(event)
            self._drain()
            return event
        # Fast path: space available and nobody queued ahead.  The put
        # event triggers before any getter it feeds, exactly as the
        # general drain would order them.
        self.items.append(item)
        event.succeed()
        getters = self._getters
        items = self.items
        while getters and items:
            getters.popleft().succeed(items.popleft())
        return event

    def get(self) -> Event:
        """Remove one item; the returned event fires with the item."""
        event = Event(self.sim)
        if self.items and not self._getters:
            # Fast path: an item is ready and nobody is queued ahead.
            event.succeed(self.items.popleft())
            if self._putters:
                # Freed space may admit a waiting putter (bounded store).
                self._drain()
            return event
        self._getters.append(event)
        self._drain()
        return event

    def _drain(self) -> None:
        progressed = True
        while progressed:
            progressed = False
            # Move pending puts into the buffer while capacity allows.
            while self._putters and (self.capacity is None
                                     or len(self.items) < self.capacity):
                put_event = self._putters.popleft()
                self.items.append(put_event.item)
                put_event.succeed()
                progressed = True
            # Serve pending gets from the buffer.
            while self._getters and self.items:
                get_event = self._getters.popleft()
                get_event.succeed(self.items.popleft())
                progressed = True


class Container:
    """A continuous quantity (bytes, tokens, ...) with blocking get/put."""

    __slots__ = ("sim", "capacity", "level", "_getters", "_putters")

    def __init__(self, sim: Simulation, capacity: float = float("inf"),
                 initial: float = 0.0):
        if initial < 0 or initial > capacity:
            raise SimulationError("initial level outside [0, capacity]")
        self.sim = sim
        self.capacity = capacity
        self.level = float(initial)
        self._getters: Deque[Event] = deque()
        self._putters: Deque[Event] = deque()

    def put(self, amount: float) -> Event:
        """Add ``amount``; fires when it fits under ``capacity``."""
        if amount < 0:
            raise SimulationError("put amount must be non-negative")
        event = _ContainerOp(self.sim)
        event.amount = amount
        self._putters.append(event)
        self._drain()
        return event

    def get(self, amount: float) -> Event:
        """Remove ``amount``; fires when that much is available."""
        if amount < 0:
            raise SimulationError("get amount must be non-negative")
        event = _ContainerOp(self.sim)
        event.amount = amount
        self._getters.append(event)
        self._drain()
        return event

    def _drain(self) -> None:
        progressed = True
        while progressed:
            progressed = False
            if self._putters:
                put_event = self._putters[0]
                if self.level + put_event.amount <= self.capacity:
                    self._putters.popleft()
                    self.level += put_event.amount
                    put_event.succeed()
                    progressed = True
            if self._getters:
                get_event = self._getters[0]
                if get_event.amount <= self.level:
                    self._getters.popleft()
                    self.level -= get_event.amount
                    get_event.succeed()
                    progressed = True
