"""Warm process-worker infrastructure shared by the parallel drivers.

Two very different parallel drivers live in this repo:

* the replication runner (:mod:`repro.experiments.runner`) fans
  *independent* tasks over a stateless ``multiprocessing.Pool``;
* the sharded engine (:mod:`repro.simulation.sharded`) keeps
  *stateful* workers alive across barrier rounds — each worker owns
  built simulation worlds that cannot cross a process boundary.

Both want the same warm-pool economics (spawning processes per run
costs a fork plus interpreter warm-up each) and the same teardown
discipline (exactly one ``atexit`` hook, reset on failure).  This
module holds the shared pieces: a process-wide shutdown registry and a
:class:`PersistentWorkerGroup` of pipe-connected workers, with a warm
cache keyed by (worker main, size) in the style of the runner's
``_warm_pool``.

Everything here is deliberately process *infrastructure*, not model
state: workers receive every input by message and return results by
message, so reuse cannot couple simulated worlds (the same argument —
and the same test pattern — as the replication pool).
"""

from __future__ import annotations

from typing import Any, Callable, Dict, List, Optional, Sequence, Tuple

__all__ = ["PersistentWorkerGroup", "register_shutdown", "shutdown_all",
           "warm_group", "shutdown_warm_group"]

#: Idempotent teardown callbacks, run once at interpreter exit.  Filled
#: through register_shutdown() only; identical role to the runner's
#: atexit latch before it moved here.
_SHUTDOWNS: List[Callable[[], None]] = []  # simlint: disable=R15  process infrastructure: teardown callbacks, not model state
_ATEXIT_INSTALLED = False  # simlint: disable=R15  one-shot latch for the atexit hook


def register_shutdown(callback: Callable[[], None]) -> None:
    """Run ``callback`` at interpreter exit (and from :func:`shutdown_all`).

    The ``atexit`` hook is installed once per process no matter how
    many pools register; callbacks must be idempotent.
    """
    global _ATEXIT_INSTALLED
    if callback not in _SHUTDOWNS:
        _SHUTDOWNS.append(callback)
    if not _ATEXIT_INSTALLED:
        import atexit

        atexit.register(shutdown_all)
        _ATEXIT_INSTALLED = True


def shutdown_all() -> None:
    """Tear down every registered pool (idempotent)."""
    for callback in list(_SHUTDOWNS):
        callback()


def _worker_loop(main: Callable, conn) -> None:
    """The worker process body: serve requests until told to exit.

    ``main(request)`` handles one request and returns a picklable
    reply.  Exceptions are caught and shipped back as ``("error",
    repr, traceback)`` so the coordinator can re-raise with context
    instead of hanging on a dead pipe.
    """
    import traceback

    while True:
        try:
            request = conn.recv()
        except (EOFError, OSError):
            break
        if request is None:  # orderly exit sentinel
            break
        try:
            reply = ("ok", main(request))
        except BaseException as exc:  # ship the failure, keep serving
            reply = ("error", repr(exc), traceback.format_exc())
        try:
            conn.send(reply)
        except (BrokenPipeError, OSError):
            break
    conn.close()


class WorkerGroupError(RuntimeError):
    """A worker failed or the group can no longer be trusted."""


class PersistentWorkerGroup:
    """N pipe-connected worker processes serving requests until shut down.

    Unlike a ``multiprocessing.Pool``, workers hold state between
    requests (the sharded engine parks built simulation worlds in
    them), so requests are addressed to a *specific* worker and the
    group never rebalances.  The request/reply protocol is strictly
    lock-step per worker: :meth:`send` then :meth:`recv`, or the
    :meth:`roundtrip` convenience that scatters to several workers and
    gathers in index order — which is what keeps coordinator-side
    fold order deterministic.
    """

    def __init__(self, size: int, main: Callable):
        import multiprocessing

        if size < 1:
            raise WorkerGroupError("worker group needs >= 1 worker")
        self.size = size
        self.main = main
        self._procs = []
        self._conns = []
        for _index in range(size):
            ours, theirs = multiprocessing.Pipe()
            proc = multiprocessing.Process(
                target=_worker_loop, args=(main, theirs), daemon=True)
            proc.start()
            theirs.close()
            self._procs.append(proc)
            self._conns.append(ours)
        self._alive = True

    @property
    def alive(self) -> bool:
        """False once the group was shut down or poisoned."""
        return self._alive

    def send(self, worker: int, request: Any) -> None:
        """Dispatch one request to one worker (non-blocking)."""
        if not self._alive:
            raise WorkerGroupError("worker group is shut down")
        try:
            self._conns[worker].send(request)
        except (BrokenPipeError, OSError) as exc:
            self.shutdown()
            raise WorkerGroupError("worker %d pipe broke: %r"
                                   % (worker, exc))

    def recv(self, worker: int) -> Any:
        """Collect one reply from one worker (blocking).

        Re-raises worker-side failures as :class:`WorkerGroupError`
        carrying the remote traceback; a failed group is shut down and
        never reused (the runner's poisoned-pool rule).
        """
        try:
            reply = self._conns[worker].recv()
        except (EOFError, OSError) as exc:
            self.shutdown()
            raise WorkerGroupError("worker %d died: %r" % (worker, exc))
        if reply[0] == "error":
            self.shutdown()
            raise WorkerGroupError(
                "worker %d failed: %s\n%s" % (worker, reply[1], reply[2]))
        return reply[1]

    def roundtrip(self, requests: Sequence[Tuple[int, Any]]) -> List[Any]:
        """Scatter ``(worker, request)`` pairs, gather replies in order.

        All requests go out before any reply is read, so workers run
        concurrently; replies come back indexed like ``requests``
        regardless of completion order — the same results-in-task-order
        rule the replication runner keeps.
        """
        for worker, request in requests:
            self.send(worker, request)
        return [self.recv(worker) for worker, _request in requests]

    def shutdown(self) -> None:
        """Terminate the workers (idempotent)."""
        if not self._alive:
            return
        self._alive = False
        for conn in self._conns:
            try:
                conn.send(None)
            except (BrokenPipeError, OSError):
                pass
        for conn in self._conns:
            conn.close()
        for proc in self._procs:
            proc.join(timeout=2.0)
            if proc.is_alive():
                proc.terminate()
                proc.join()
        self._procs = []
        self._conns = []

    def __repr__(self) -> str:
        return "<PersistentWorkerGroup size=%d %s>" % (
            self.size, "alive" if self._alive else "shut down")


#: The warm group, reused across sharded runs until the size or worker
#: main changes — the PersistentWorkerGroup analogue of the runner's
#: warm replication pool.
_GROUP: Optional[PersistentWorkerGroup] = None  # simlint: disable=R15  process infrastructure; workers exchange state only by message
_GROUP_KEY: Optional[Tuple[int, Any]] = None  # simlint: disable=R15  paired with _GROUP above


def warm_group(size: int, main: Callable) -> PersistentWorkerGroup:
    """The shared worker group for ``(size, main)``, created on demand."""
    global _GROUP, _GROUP_KEY
    key = (size, main)
    if _GROUP is not None and (_GROUP_KEY != key or not _GROUP.alive):
        shutdown_warm_group()
    if _GROUP is None:
        _GROUP = PersistentWorkerGroup(size, main)
        _GROUP_KEY = key
        register_shutdown(shutdown_warm_group)
    return _GROUP


def shutdown_warm_group() -> None:
    """Tear down the warm worker group (no-op when none is running)."""
    global _GROUP, _GROUP_KEY
    if _GROUP is not None:
        _GROUP.shutdown()
        _GROUP = None
        _GROUP_KEY = None
