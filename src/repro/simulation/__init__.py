"""Discrete-event simulation substrate.

Every other subsystem in :mod:`repro` — the hardware models, the virtual
machine monitor, the storage stack, the network and the grid middleware —
is built on top of this package.  It provides:

* :class:`~repro.simulation.kernel.Simulation` — the event loop and clock;
* :class:`~repro.simulation.kernel.Process` — generator-based coroutines;
* :mod:`~repro.simulation.resources` — queued resources, stores, containers;
* :mod:`~repro.simulation.randomness` — reproducible per-component RNG streams;
* :mod:`~repro.simulation.monitor` — time-series probes and statistics.

The design follows the classic process-interaction style (SimPy-like):
model code is written as generator functions that ``yield`` events such as
timeouts or resource requests, and the kernel resumes them when those
events fire.
"""

from repro.simulation.kernel import (
    Event,
    Interrupt,
    Process,
    Simulation,
    SimulationError,
    Timeout,
)
from repro.simulation.monitor import StatAccumulator, TimeSeriesMonitor
from repro.simulation.randomness import RandomStreams
from repro.simulation.resources import Container, Resource, Store

__all__ = [
    "Container",
    "Event",
    "Interrupt",
    "Process",
    "RandomStreams",
    "Resource",
    "Simulation",
    "SimulationError",
    "StatAccumulator",
    "Store",
    "TimeSeriesMonitor",
    "Timeout",
]
