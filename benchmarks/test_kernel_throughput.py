"""Kernel throughput microbenchmark: events per second of wall time.

Two synthetic workloads exercise the two halves of the kernel hot path:

* **ping-pong** — pairs of processes waking each other through plain
  one-shot events (``Event.succeed`` -> enqueue -> pop -> resume), the
  path every resource grant and message hand-off takes;
* **timeout-storm** — many processes sleeping on timeouts
  (``Timeout.__init__`` -> heap -> pop -> resume), the path every
  service-time model takes.

The measured events/sec for both workloads, together with the pre-PR
baseline recorded below, are written to ``BENCH_kernel.json`` at the
repo root so the perf trajectory of the kernel is archived alongside
the experiment tables (``make bench`` regenerates it).

Wall-clock reads are confined to this harness; the simulated worlds
remain deterministic.
"""

import json
import pathlib
import time

import pytest

from repro.simulation.kernel import Simulation

pytestmark = pytest.mark.bench

REPO_ROOT = pathlib.Path(__file__).resolve().parents[1]
BENCH_PATH = REPO_ROOT / "BENCH_kernel.json"

#: Events/sec of the seed kernel (commit 57d6908: dict-backed events,
#: per-event ``getattr`` in ``step()``, no ``__slots__``), measured on
#: the reference container with the workloads below.  The post-PR
#: kernel is compared against these numbers; re-measure on the old
#: kernel if the workload shapes ever change.
PRE_PR_BASELINE = {
    "ping_pong_events_per_sec": 533589.0,
    "timeout_storm_events_per_sec": 523884.0,
}


def ping_pong_workload(pairs: int = 50, hops: int = 400) -> Simulation:
    """Pairs of processes trading messages through two channels."""
    from repro.simulation.resources import Store

    sim = Simulation()

    def ping(sim, inbox, outbox, hops):
        for _hop in range(hops):
            outbox.put("ping")
            yield inbox.get()

    def pong(sim, inbox, outbox, hops):
        for _hop in range(hops):
            yield inbox.get()
            outbox.put("pong")

    for _pair in range(pairs):
        a_chan = Store(sim)
        b_chan = Store(sim)
        sim.spawn(ping(sim, a_chan, b_chan, hops), name="ping")
        sim.spawn(pong(sim, b_chan, a_chan, hops), name="pong")
    sim.run()
    return sim


def timeout_storm_workload(processes: int = 200,
                           hops: int = 200) -> Simulation:
    """Many processes sleeping on staggered timeouts."""
    sim = Simulation()

    def sleeper(sim, i):
        delay = 1e-3 * (i + 1)
        for _hop in range(hops):
            yield sim.timeout(delay)

    for i in range(processes):
        sim.spawn(sleeper(sim, i), name="sleeper-%d" % i)
    sim.run()
    return sim


def _events_per_sec(workload, rounds: int = 5) -> float:
    """Best-of-N events/sec; the total event count is ``sim._next_id``
    (every scheduled event gets exactly one queue entry)."""
    best = 0.0
    for _round in range(rounds):
        start = time.perf_counter()
        sim = workload()
        elapsed = time.perf_counter() - start
        best = max(best, sim._next_id / elapsed)
    return best


def test_kernel_throughput(report):
    ping_pong = _events_per_sec(ping_pong_workload)
    storm = _events_per_sec(timeout_storm_workload)
    record = {
        "workloads": {
            "ping_pong": "50 pairs x 400 hops of Event.succeed hand-offs",
            "timeout_storm": "200 processes x 200 staggered timeouts",
        },
        "baseline_events_per_sec": {
            "ping_pong": PRE_PR_BASELINE["ping_pong_events_per_sec"],
            "timeout_storm":
                PRE_PR_BASELINE["timeout_storm_events_per_sec"],
        },
        "current_events_per_sec": {
            "ping_pong": round(ping_pong, 1),
            "timeout_storm": round(storm, 1),
        },
    }
    lines = ["Kernel throughput (events/sec, best of 5):",
             "  ping-pong:     %12.0f" % ping_pong,
             "  timeout-storm: %12.0f" % storm]
    speedups = {}
    for key, current in (("ping_pong", ping_pong),
                         ("timeout_storm", storm)):
        base = record["baseline_events_per_sec"][key]
        if base:
            speedups[key] = round(current / base, 3)
            lines.append("  %s speedup vs pre-PR baseline: %.2fx"
                         % (key, current / base))
    record["speedup_vs_baseline"] = speedups
    BENCH_PATH.write_text(json.dumps(record, indent=2) + "\n")
    report("\n".join(lines))
    # Regression guard only: the archived numbers carry the precise
    # trajectory; a hard 1.5x assert here would be hostage to noise on
    # loaded CI machines.
    for key, speedup in speedups.items():
        assert speedup > 0.8, (
            "%s throughput regressed to %.2fx of the recorded baseline"
            % (key, speedup))
