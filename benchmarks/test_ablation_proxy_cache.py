"""A1: proxy disk-cache ablation (Section 3.1, image management).

"In the common case, large parts of VM images can be shared by multiple
readers ... Read-only sharing patterns can be exploited by proxy-based
virtual file systems, for example by implementing a proxy-controlled
disk cache."  Successive warm-state instantiations of one master image
over the WAN, with the proxy's disk cache enabled and disabled.
"""

from repro.core.reporting import format_table
from repro.experiments.ablations import run_proxy_cache_ablation


def test_ablation_proxy_cache(benchmark, report):
    results = benchmark.pedantic(
        run_proxy_cache_ablation, kwargs={"instantiations": 4, "seed": 0},
        rounds=1, iterations=1)

    rows = []
    for result in results:
        rows.append([
            "on" if result.proxy_cache else "off",
            "  ".join("%.1f" % t for t in result.startup_times),
            "%.1f" % result.cold,
            "%.1f" % result.warm_mean,
        ])
    report(format_table(
        ["Proxy cache", "Startup times (s)", "Cold", "Warm mean"],
        rows,
        title="A1: repeated instantiation of a shared image over the WAN"))

    with_cache = next(r for r in results if r.proxy_cache)
    without = next(r for r in results if not r.proxy_cache)

    # Cold starts are the same WAN-bound fetch either way.
    assert abs(with_cache.cold - without.cold) / without.cold < 0.05
    # The proxy cache turns repeat instantiations nearly local.
    assert with_cache.warm_mean < with_cache.cold / 5
    # Without the cache every instantiation pays the WAN again.
    assert without.warm_mean > 0.8 * without.cold
    # Net effect across the four instantiations: large saving.
    assert sum(with_cache.startup_times) < 0.5 * sum(without.startup_times)
