"""A3: whole-file staging versus on-demand access (Section 3.1).

"File staging approaches require the user to specify the files to be
transferred [and] transfer whole files when they are opened ... The
transfer of entire VM states can lead to unnecessary traffic due to the
copying of unused data.  On-demand transfers are therefore desirable."
Sweep the fraction of a 512 MB image a task actually touches and compare
GridFTP-style staging against on-demand NFS block access over the WAN.
"""

from repro.core.reporting import format_table
from repro.experiments.ablations import run_staging_ablation

FRACTIONS = (0.02, 0.05, 0.1, 0.25, 0.5, 0.75, 1.0)


def test_ablation_staging(benchmark, report):
    points = benchmark.pedantic(run_staging_ablation,
                                kwargs={"fractions": FRACTIONS},
                                rounds=1, iterations=1)

    rows = [["%.2f" % p.fraction, "%.1f" % p.on_demand_time,
             "%.1f" % p.staged_time,
             "on-demand" if p.on_demand_wins else "staged"]
            for p in points]
    report(format_table(
        ["Touched fraction", "On-demand (s)", "Staged (s)", "Winner"],
        rows,
        title="A3: on-demand block access vs whole-file staging (WAN)"))

    # Small working sets: on-demand wins by a wide margin (the paper's
    # motivation for grid virtual file systems).
    small = points[0]
    assert small.on_demand_wins
    assert small.staged_time > 10 * small.on_demand_time

    # Staging cost is essentially flat; on-demand grows with the
    # working set.
    staged_times = [p.staged_time for p in points]
    assert max(staged_times) < 1.2 * min(staged_times)
    on_demand_times = [p.on_demand_time for p in points]
    assert on_demand_times == sorted(on_demand_times)

    # There is a crossover: full-image access favours the pipelined
    # bulk transfer (no per-RPC costs).
    assert not points[-1].on_demand_wins
    winners = [p.on_demand_wins for p in points]
    # Monotone switch: once staging wins it keeps winning.
    assert winners == sorted(winners, reverse=True)
