"""Table 1: macrobenchmark results (SPECseis / SPECclimate).

Regenerates the paper's Table 1 rows — user, system and total CPU times
for each application on the physical machine, on a VM with state on
local disk, and on a VM with state accessed via an NFS-based grid
virtual file system (PVFS) across a WAN — and checks the paper's
qualitative claims:

* overheads are small (< 10%, in fact < 5%);
* ordering: physical < VM/local < VM/PVFS;
* SPECclimate's VM dilation (~4%) far exceeds SPECseis's (~1%), driven
  by its page-fault rate;
* sys time inflates much more than user time inside the VM.
"""

from repro.core.reporting import format_table
from repro.experiments.table1 import run_table1

#: The paper's measured cells (user+sys seconds, overhead fraction).
PAPER = {
    ("SPECseis", "physical"): (16414, None),
    ("SPECseis", "vm-localdisk"): (16617, 0.012),
    ("SPECseis", "vm-pvfs"): (16750, 0.020),
    ("SPECclimate", "physical"): (9307, None),
    ("SPECclimate", "vm-localdisk"): (9679, 0.040),
    ("SPECclimate", "vm-pvfs"): (9702, 0.042),
}


def test_table1_macrobenchmarks(benchmark, report):
    rows = benchmark.pedantic(run_table1, kwargs={"scale": 1.0, "seed": 0},
                              rounds=1, iterations=1)

    table_rows = []
    for row in rows:
        paper_total, paper_overhead = PAPER[(row.application, row.resource)]
        table_rows.append([
            row.application,
            row.resource,
            "%.0f" % row.user_time,
            "%.1f" % row.sys_time,
            "%.0f" % row.total_time,
            "%.2f%%" % (100 * row.overhead)
            if row.overhead is not None else "N/A",
            "%d" % paper_total,
            "%.1f%%" % (100 * paper_overhead)
            if paper_overhead is not None else "N/A",
        ])
    report(format_table(
        ["Application", "Resource", "User(s)", "Sys(s)", "User+sys(s)",
         "Overhead", "Paper total", "Paper ovh"],
        table_rows,
        title="Table 1: macrobenchmark results (measured vs paper)"))

    indexed = {(r.application, r.resource): r for r in rows}
    for app in ("SPECseis", "SPECclimate"):
        physical = indexed[(app, "physical")]
        local = indexed[(app, "vm-localdisk")]
        pvfs = indexed[(app, "vm-pvfs")]
        # Ordering and small magnitudes.
        assert physical.total_time < local.total_time < pvfs.total_time
        assert 0.0 < local.overhead < 0.05
        assert local.overhead < pvfs.overhead < 0.06
        # Sys inflates much more than user inside the VM.
        assert local.sys_time > 2.5 * physical.sys_time
        assert local.user_time / physical.user_time < 1.05
        # PVFS costs extra sys (NFS client stack) but identical user.
        assert pvfs.sys_time > local.sys_time

    # The fault-rate mechanism: climate dilates ~4x more than seis.
    seis_overhead = indexed[("SPECseis", "vm-localdisk")].overhead
    climate_overhead = indexed[("SPECclimate", "vm-localdisk")].overhead
    assert climate_overhead > 2.5 * seis_overhead

    # Within-band versus the paper: every measured total within 2.5%.
    for (app, resource), (paper_total, _po) in PAPER.items():
        measured = indexed[(app, resource)].total_time
        assert abs(measured - paper_total) / paper_total < 0.025
