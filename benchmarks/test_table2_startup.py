"""Table 2: VM startup times through globusrun.

Regenerates mean/std/min/max startup latency for {VM-reboot, VM-restore}
x {Persistent, Non-persistent DiskFS, Non-persistent LoopbackNFS} over
ten samples, and checks the paper's claims:

* the smallest startup is a non-persistent-disk restore on the native
  file system (paper: 12.4 s mean; "the smallest observed startup
  latency is 12 s");
* explicit persistent copies push startup past four minutes;
* NFS-accessed state stays below ~40 s for restores ("below 30 seconds
  if the VM state is accessed via a low-latency NFS/RPC stack");
* restore beats reboot in every storage mode.
"""

from repro.core.reporting import format_table
from repro.experiments.table2 import rows_by_key, run_table2

#: Paper means for each (start, storage) cell.
PAPER = {
    ("reboot", "persistent"): 273.0,
    ("reboot", "nonpersistent-diskfs"): 69.2,
    ("reboot", "nonpersistent-loopbacknfs"): 74.5,
    ("restore", "persistent"): 269.0,
    ("restore", "nonpersistent-diskfs"): 12.4,
    ("restore", "nonpersistent-loopbacknfs"): 29.2,
}


def test_table2_startup(benchmark, report):
    rows = benchmark.pedantic(run_table2, kwargs={"samples": 10, "seed": 0},
                              rounds=1, iterations=1)

    table_rows = [[r.start_mode, r.storage_mode, "%.1f" % r.mean,
                   "%.1f" % r.std, "%.1f" % r.minimum, "%.1f" % r.maximum,
                   "%.1f" % PAPER[(r.start_mode, r.storage_mode)]]
                  for r in rows]
    report(format_table(
        ["Start", "Storage", "Mean(s)", "Std", "Min", "Max", "Paper mean"],
        table_rows,
        title="Table 2: VM startup times via globusrun (10 samples)"))

    indexed = rows_by_key(rows)

    # Fastest cell: non-persistent restore from the native FS, ~12 s.
    fastest = min(rows, key=lambda r: r.mean)
    assert fastest.start_mode == "restore"
    assert fastest.storage_mode == "nonpersistent-diskfs"
    assert 10.0 < fastest.mean < 20.0
    assert fastest.minimum > 9.0  # paper's floor: "smallest ... is 12s"

    # Persistent copies cost more than 4 minutes.
    for start_mode in ("reboot", "restore"):
        assert indexed[(start_mode, "persistent")].mean > 240.0

    # Low-latency NFS restore stays below ~40 s.
    nfs_restore = indexed[("restore", "nonpersistent-loopbacknfs")]
    assert nfs_restore.mean < 40.0

    # Restore beats reboot for every storage mode; loopback NFS is a
    # modest tax over the native file system.
    for storage in ("persistent", "nonpersistent-diskfs",
                    "nonpersistent-loopbacknfs"):
        assert indexed[("restore", storage)].mean \
            < indexed[("reboot", storage)].mean
    assert indexed[("reboot", "nonpersistent-loopbacknfs")].mean \
        < 1.25 * indexed[("reboot", "nonpersistent-diskfs")].mean

    # Within-band versus the paper: non-persistent cells within 35%,
    # persistent within 25% (see EXPERIMENTS.md for the reboot gap).
    for (start, storage), paper_mean in PAPER.items():
        measured = indexed[(start, storage)].mean
        band = 0.25 if storage == "persistent" else 0.35
        assert abs(measured - paper_mean) / paper_mean < band

    # Run-to-run variance exists (GRAM polling, boot jitter).
    assert indexed[("reboot", "nonpersistent-diskfs")].std > 0.5
