"""Figure 1: microbenchmark slowdown under background load.

Regenerates the twelve bars — {none, light, heavy} background load x
all four placements of the (load, test) tasks over the physical and the
virtual machine — and checks the paper's takeaway: "independently of
load, the test tasks see a typical slowdown of 10% or less when running
on the virtual machine", i.e. the *virtualization-induced* slowdown
(test-on-VM versus test-on-physical under the same load placement and
comparable contention) stays under 10%.

Where both the load and the test share the single 1-vCPU VM the guest
time-slices them — a real effect of uniprocessor VMs that shows up as a
larger absolute slowdown; see EXPERIMENTS.md for the discussion.
"""

import os

from repro.core.reporting import format_table
from repro.experiments.figure1 import results_by_key, run_figure1

#: Paper fidelity knob: REPRO_FIGURE1_SAMPLES=1000 reruns the full study.
_SAMPLES = int(os.environ.get("REPRO_FIGURE1_SAMPLES", "150"))


def test_figure1_microbenchmark(benchmark, report):
    results = benchmark.pedantic(
        run_figure1, kwargs={"samples": _SAMPLES, "test_seconds": 3.0,
                             "seed": 0},
        rounds=1, iterations=1)

    rows = [[r.load_level, r.test_on, r.load_on,
             "%.3f" % r.mean_slowdown, "%.3f" % r.std_slowdown,
             r.samples]
            for r in results]
    report(format_table(
        ["Load", "Test on", "Load on", "Mean slowdown", "Std", "Samples"],
        rows,
        title="Figure 1: microbenchmark slowdown (12 scenarios)"))

    indexed = results_by_key(results)

    for load in ("none", "light", "heavy"):
        # The paper's claim: moving the *test task* into the VM adds
        # less than 10% slowdown, at every load level, when contention
        # is otherwise comparable (load on the physical machine).
        phys = indexed[(load, "physical", "physical")].mean_slowdown
        virt = indexed[(load, "vm", "physical")].mean_slowdown
        assert virt / phys < 1.10
        assert virt >= phys  # virtualization never speeds things up

    # No load: VM overhead alone, well under 10%.
    base = indexed[("none", "physical", "physical")]
    vm_idle = indexed[("none", "vm", "physical")]
    assert base.mean_slowdown == 1.0
    assert 1.0 < vm_idle.mean_slowdown < 1.02

    # Slowdown grows with load level for every placement.
    for placement in (("physical", "physical"), ("vm", "physical"),
                      ("vm", "vm")):
        none = indexed[("none",) + placement].mean_slowdown
        light = indexed[("light",) + placement].mean_slowdown
        heavy = indexed[("heavy",) + placement].mean_slowdown
        assert none <= light + 1e-9
        assert light <= heavy + 1e-9

    # World switches: under heavy physical load the VM's extra slowdown
    # is visible but small.
    heavy_phys = indexed[("heavy", "physical", "physical")].mean_slowdown
    heavy_vm = indexed[("heavy", "vm", "physical")].mean_slowdown
    assert 1.0 < heavy_vm / heavy_phys < 1.05

    # Guest context switches: load sharing the 1-vCPU guest with the
    # test slows it far more than the same load outside the VM.
    shared_guest = indexed[("heavy", "vm", "vm")].mean_slowdown
    assert shared_guest > heavy_vm
