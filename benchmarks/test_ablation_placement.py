"""A5: does RPS-style prediction actually buy anything?

A stream of jobs on a grid with one quiet and one heavily loaded host:
the predictive metascheduler versus uniform-random placement.
"""

import math

from repro.core.reporting import format_table
from repro.experiments.placement_experiment import run_placement_ablation


def test_ablation_placement(benchmark, report):
    results = benchmark.pedantic(
        run_placement_ablation,
        kwargs={"jobs": 6, "job_seconds": 30.0, "busy_load": 3.0,
                "seed": 0},
        rounds=1, iterations=1)

    rows = [[r.policy, r.jobs, "%.1f" % r.mean_wall,
             "%d/%d" % (r.busy_host_placements, r.jobs),
             "%.0f%%" % (100 * r.mean_prediction_error)
             if not math.isnan(r.mean_prediction_error) else "n/a"]
            for r in results]
    report(format_table(
        ["Policy", "Jobs", "Mean wall (s)", "Busy-host placements",
         "Pred. error"],
        rows,
        title="A5: prediction-driven vs random VM placement"))

    predictive = next(r for r in results if r.policy == "predictive")
    random_policy = next(r for r in results if r.policy == "random")

    # Prediction avoids the busy host entirely...
    assert predictive.busy_host_placements == 0
    # ... and the random baseline lands there at least once.
    assert random_policy.busy_host_placements >= 1
    # Mean job time improves substantially.
    assert predictive.mean_wall < 0.8 * random_policy.mean_wall
    # Forecasts are decent (within 30% on average).
    assert predictive.mean_prediction_error < 0.3
