"""Null-tracer overhead: the hot path must stay within ~5% of baseline.

Compares the instrumented kernel (tracer guards in ``_enqueue_event``
and ``step``, null tracer attached) against a subclass with the guards
stripped back out, over a pure event-churn workload.  Uses interleaved
min-of-N timing: the minimum over many alternating rounds cancels both
one-off scheduler noise and slow clock drift, which a mean cannot.

Run with ``pytest benchmarks/test_null_tracer_overhead.py -v``.
"""

import heapq
import timeit

from repro.core.reporting import format_table
from repro.simulation import Simulation
from repro.simulation.kernel import SimulationError

#: Acceptance bound from the observability issue: ≤5% hot-path cost.
MAX_OVERHEAD = 0.05

ROUNDS = 30
PROCESSES = 50
HOPS = 400


class BaselineSimulation(Simulation):
    """The kernel hot path with the tracer guards stripped back out."""

    def _enqueue_event(self, event, delay=0.0,
                       priority=Simulation._PRIORITY_NORMAL):
        heapq.heappush(self._queue,
                       (self.now + delay, priority, self._next_id, event))
        self._next_id += 1

    def step(self):
        if not self._queue:
            raise SimulationError("no events to step")
        when, _priority, _eid, event = heapq.heappop(self._queue)
        self.now = when
        event._process()
        if event._ok is False and not getattr(event, "_defused", False):
            raise event._value


def churn(sim_class):
    sim = sim_class()

    def worker(sim, i):
        for _hop in range(HOPS):
            yield sim.timeout(1e-3 * (i + 1))

    for i in range(PROCESSES):
        sim.spawn(worker(sim, i), name="churn-%d" % i)
    sim.run()
    return sim.now


def test_null_tracer_overhead_within_bound(report):
    assert churn(Simulation) == churn(BaselineSimulation)

    instrumented = []
    baseline = []
    for _round in range(ROUNDS):
        baseline.append(timeit.timeit(
            lambda: churn(BaselineSimulation), number=1))
        instrumented.append(timeit.timeit(
            lambda: churn(Simulation), number=1))

    best_base = min(baseline)
    best_inst = min(instrumented)
    overhead = best_inst / best_base - 1.0
    events = PROCESSES * HOPS
    report(format_table(
        ["Kernel", "Best(s)", "Events/s", "Overhead"],
        [["baseline (no guards)", "%.4f" % best_base,
          "%.0f" % (events / best_base), "-"],
         ["instrumented + null tracer", "%.4f" % best_inst,
          "%.0f" % (events / best_inst), "%.2f%%" % (100 * overhead)]],
        title="Null-tracer hot-path overhead (min of %d rounds)"
              % ROUNDS))
    assert overhead <= MAX_OVERHEAD, \
        "null tracer costs %.1f%% (> %.0f%%)" % (100 * overhead,
                                                 100 * MAX_OVERHEAD)
