"""Flight-recorder overhead: ≤5% recording, <1% when not recording.

Times a metric-churn workload (processes observing histograms and
bumping counters every hop — the registry state a recorder snapshots)
three ways: with no recorder, with a recorder constructed but never
started (the null path every non-recording run takes), and with a
heartbeat recorder sampling every simulated second.  Interleaved
min-of-N timing, as in ``test_null_tracer_overhead.py``.

Run with ``pytest benchmarks/test_recorder_overhead.py -v``.
"""

import timeit

from repro.core.reporting import format_table
from repro.obs.recorder import FlightRecorder
from repro.simulation import Simulation

#: Acceptance bounds from the observability issue.
MAX_RECORDING_OVERHEAD = 0.05
MAX_NULL_OVERHEAD = 0.01

ROUNDS = 30
PROCESSES = 50
HOPS = 400


def churn(recorder_mode):
    """Run the workload; returns (sim, recorder-or-None)."""
    sim = Simulation()

    def worker(sim, i, latency, hops):
        for hop in range(HOPS):
            yield sim.timeout(1e-3 * (i + 1))
            latency.observe(1e-3 * (i + 1) * (1 + hop % 3))
            hops.inc()

    workers = []
    for i in range(PROCESSES):
        scope = sim.metrics.scoped("shard%d" % (i % 4))
        workers.append(sim.spawn(
            worker(sim, i, scope.histogram("hop.latency"),
                   scope.counter("hops")),
            name="churn-%d" % i))
    recorder = None
    if recorder_mode != "none":
        recorder = FlightRecorder(sim, interval=1.0)
        if recorder_mode == "recording":
            recorder.start()

    def drive(sim, workers):
        yield sim.all_of(workers)

    driver = sim.spawn(drive(sim, workers), name="driver")
    sim.run_until_complete(driver)
    if recorder is not None and recorder_mode == "recording":
        recorder.stop()
    return sim, recorder


def test_recorder_overhead_within_bounds(report):
    # Attaching (or even running) the recorder must not perturb the
    # model: same end time, same metric export.
    plain, _ = churn("none")
    recorded, recorder = churn("recording")
    assert recorded.now == plain.now
    assert recorded.metrics.to_json() == plain.metrics.to_json()
    assert recorder.entries

    modes = ("none", "idle", "recording")
    for mode in modes:  # warm caches and allocators before timing
        churn(mode)
    timings = {mode: [] for mode in modes}
    for round_ in range(ROUNDS):
        # Rotate the in-round order so slow clock drift hits every
        # mode equally instead of biasing whichever runs last.
        for k in range(len(modes)):
            mode = modes[(round_ + k) % len(modes)]
            timings[mode].append(timeit.timeit(
                lambda mode=mode: churn(mode), number=1))

    best = {mode: min(times) for mode, times in timings.items()}
    null_overhead = best["idle"] / best["none"] - 1.0
    recording_overhead = best["recording"] / best["none"] - 1.0
    events = PROCESSES * HOPS
    report(format_table(
        ["Mode", "Best(s)", "Events/s", "Overhead"],
        [["no recorder", "%.4f" % best["none"],
          "%.0f" % (events / best["none"]), "-"],
         ["constructed, not started", "%.4f" % best["idle"],
          "%.0f" % (events / best["idle"]),
          "%.2f%%" % (100 * null_overhead)],
         ["recording @ 1s heartbeat", "%.4f" % best["recording"],
          "%.0f" % (events / best["recording"]),
          "%.2f%%" % (100 * recording_overhead)]],
        title="Flight-recorder overhead (min of %d rounds)" % ROUNDS))
    assert null_overhead < MAX_NULL_OVERHEAD, \
        "idle recorder costs %.2f%% (>= %.0f%%)" \
        % (100 * null_overhead, 100 * MAX_NULL_OVERHEAD)
    assert recording_overhead <= MAX_RECORDING_OVERHEAD, \
        "recording costs %.2f%% (> %.0f%%)" \
        % (100 * recording_overhead, 100 * MAX_RECORDING_OVERHEAD)
