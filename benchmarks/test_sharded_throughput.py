"""Sharded engine throughput: critical-path speedup over shard counts.

The workload is the multi-site fleet scenario (four sites, 48
sessions each, ring dispatch traffic) — the decomposable world the
sharded engine exists for.  The run is identical at every shard count
(that is the determinism contract, asserted below), so the benchmark
measures pure engine scaling.

**Methodology — critical path, not wall clock.**  The reference
container exposes a single CPU core, so the worker processes of a
multi-shard run time-slice one core and wall clock cannot show the
speedup a multi-core host realizes.  CPU time can: every shard round
reports its own ``time.process_time`` consumption, so for each shard
count we reconstruct the parallel schedule's critical path

    makespan = max over workers(sum of that worker's shard CPU)
               + coordinator CPU

which is exactly the elapsed time of the run on a host with one idle
core per worker (transport overlap ignored on both sides of the
ratio).  Speedup at N shards is ``makespan(1) / makespan(N)``.  Wall
clock is recorded alongside for honesty; on a single-core host it
shows no speedup and ``host_cpu_cores`` in the archived JSON says why.

The measured speedups and critical-path events/sec are written to
``BENCH_sharded.json`` at the repo root (``make bench`` regenerates
it).
"""

import json
import os
import pathlib
import time

import pytest

from repro.experiments.fleet import run_fleet
from repro.simulation.workerpool import shutdown_warm_group

pytestmark = pytest.mark.bench

REPO_ROOT = pathlib.Path(__file__).resolve().parents[1]
BENCH_PATH = REPO_ROOT / "BENCH_sharded.json"

#: The fleet shape: heavy per-site tails, a short announce phase, a
#: coarse flight-recorder grid (the recorder is model payload, not
#: engine work, so the benchmark keeps it out of the numerator).
FLEET = dict(sites=4, sessions=48, seed=42, arrival_every=6.0,
             interval=10.0, capacity=64)

SHARD_COUNTS = (1, 2, 4)

#: Acceptance floors from the sharding work's design targets.
MIN_SPEEDUP = {2: 1.6, 4: 2.5}

ROUNDS = 3


def _critical_path(run) -> float:
    """Elapsed seconds of the run's schedule on one core per worker."""
    buckets = [[] for _ in range(run.workers)]
    for index, group in enumerate(run.plan.groups):
        buckets[index % run.workers].append(group)
    worker_cpu = [sum(run.cpu[group] for group in bucket)
                  for bucket in buckets]
    return max(worker_cpu) + run.coordinator_cpu


def _measure(shards: int) -> dict:
    """Best-of-N critical path (and the matching wall clock)."""
    best = None
    for _round in range(ROUNDS):
        start = time.perf_counter()
        result = run_fleet(shards=shards, **FLEET)
        wall = time.perf_counter() - start
        sample = {
            "makespan_sec": _critical_path(result.run),
            "wall_sec": wall,
            "events": result.run.total_events,
            "rounds": result.run.rounds,
            "workers": result.run.workers,
            "coordinator_cpu_sec": result.run.coordinator_cpu,
        }
        if best is None or sample["makespan_sec"] < best["makespan_sec"]:
            best = sample
    best["events_per_sec"] = best["events"] / best["makespan_sec"]
    return best


def test_sharded_throughput(report):
    try:
        samples = {shards: _measure(shards) for shards in SHARD_COUNTS}
    finally:
        shutdown_warm_group()

    # The determinism contract first: every shard count simulated the
    # identical run, so the ratios below compare equal work.
    events = {s["events"] for s in samples.values()}
    rounds = {s["rounds"] for s in samples.values()}
    assert len(events) == 1 and len(rounds) == 1

    base = samples[1]["makespan_sec"]
    speedups = {shards: base / samples[shards]["makespan_sec"]
                for shards in SHARD_COUNTS}

    record = {
        "workload": "fleet: %(sites)d sites x %(sessions)d sessions, "
                    "seed %(seed)d" % FLEET,
        "methodology": (
            "critical path: makespan = max over workers of summed "
            "per-shard round CPU (time.process_time) + coordinator "
            "CPU; speedup = makespan(1 shard) / makespan(N); best of "
            "%d runs; wall clock recorded for reference only" % ROUNDS),
        "host_cpu_cores": os.cpu_count(),
        "shards": {
            str(shards): {
                "makespan_sec": round(sample["makespan_sec"], 4),
                "critical_path_events_per_sec":
                    round(sample["events_per_sec"], 1),
                "wall_sec": round(sample["wall_sec"], 3),
                "coordinator_cpu_sec":
                    round(sample["coordinator_cpu_sec"], 4),
                "workers": sample["workers"],
                "speedup_vs_1_shard": round(speedups[shards], 3),
            }
            for shards, sample in samples.items()
        },
        "events_per_run": samples[1]["events"],
        "rounds_per_run": samples[1]["rounds"],
        "min_speedup_required": {str(k): v
                                 for k, v in MIN_SPEEDUP.items()},
    }
    BENCH_PATH.write_text(json.dumps(record, indent=2) + "\n")

    lines = ["Sharded engine throughput (critical path, best of %d):"
             % ROUNDS]
    for shards in SHARD_COUNTS:
        sample = samples[shards]
        lines.append(
            "  %d shard%s: makespan %6.3fs  %8.0f ev/s  "
            "speedup %.2fx  (wall %6.3fs)"
            % (shards, " " if shards == 1 else "s",
               sample["makespan_sec"], sample["events_per_sec"],
               speedups[shards], sample["wall_sec"]))
    report("\n".join(lines))

    for shards, floor in MIN_SPEEDUP.items():
        assert speedups[shards] >= floor, (
            "%d-shard critical-path speedup %.2fx is below the %.1fx "
            "floor" % (shards, speedups[shards], floor))
