"""Sharded engine throughput: critical-path speedup over shard counts.

Two workloads, one per decomposition style:

* **fleet** — the multi-site scenario (four sites, 48 sessions each,
  ring dispatch traffic): coupled shards exchanging real cross-shard
  messages, the conservative engine's home turf.
* **table2** — the paper's own startup-time table under the ``host``
  shard model: one group per sample world, channel-free, a single
  unbounded round.  This is the embarrassingly parallel end of the
  spectrum and measures pure fan-out overhead.

Both runs are identical at every shard count (the determinism
contract, asserted below), so the benchmark measures pure engine
scaling.  A third section records what adaptive windows buy on the
fleet's round schedule versus fixed lookahead windows.

**Methodology — critical path, not wall clock.**  The reference
container exposes a single CPU core, so the worker processes of a
multi-shard run time-slice one core and wall clock cannot show the
speedup a multi-core host realizes.  CPU time can: every shard round
reports its own ``time.process_time`` consumption, so for each shard
count we reconstruct the parallel schedule's critical path

    makespan = max over workers(sum of that worker's shard CPU)
               + coordinator CPU

which is exactly the elapsed time of the run on a host with one idle
core per worker (transport overlap ignored on both sides of the
ratio).  Speedup at N shards is ``makespan(1) / makespan(N)``.  Wall
clock is recorded alongside for honesty; on a single-core host it
shows no speedup and ``host_cpu_cores`` in the archived JSON says why.

The measured speedups and critical-path events/sec are merged into
``BENCH_sharded.json`` at the repo root (``make bench`` regenerates
it; each test owns its own top-level section).
"""

import json
import os
import pathlib
import time

import pytest

from repro.experiments.fleet import run_fleet
from repro.experiments.table2 import table2_shard_run
from repro.simulation.workerpool import shutdown_warm_group

pytestmark = pytest.mark.bench

REPO_ROOT = pathlib.Path(__file__).resolve().parents[1]
BENCH_PATH = REPO_ROOT / "BENCH_sharded.json"

#: The fleet shape: heavy per-site tails, a short announce phase, a
#: coarse flight-recorder grid (the recorder is model payload, not
#: engine work, so the benchmark keeps it out of the numerator).
FLEET = dict(sites=4, sessions=48, seed=42, arrival_every=6.0,
             interval=10.0, capacity=64)

#: The table2 shape: every sample its own shard-able world.
TABLE2 = dict(samples=24, seed=42, shard_model="host")

SHARD_COUNTS = (1, 2, 4)

#: Acceptance floors from the sharding work's design targets.
MIN_SPEEDUP = {"fleet": {2: 1.6, 4: 2.5},
               "table2": {2: 1.5, 4: 2.0}}

ROUNDS = 3

_METHODOLOGY = (
    "critical path: makespan = max over workers of summed per-shard "
    "round CPU (time.process_time) + coordinator CPU; speedup = "
    "makespan(1 shard) / makespan(N); best of %d runs; wall clock "
    "recorded for reference only" % ROUNDS)


def _critical_path(run) -> float:
    """Elapsed seconds of the run's schedule on one core per worker."""
    buckets = [[] for _ in range(run.workers)]
    for index, group in enumerate(run.plan.groups):
        buckets[index % run.workers].append(group)
    worker_cpu = [sum(run.cpu[group] for group in bucket)
                  for bucket in buckets]
    return max(worker_cpu) + run.coordinator_cpu


def _merge_bench(section: str, payload: dict) -> None:
    """Update one top-level section of the archived JSON in place."""
    record = {}
    if BENCH_PATH.exists():
        record = json.loads(BENCH_PATH.read_text())
    record["methodology"] = _METHODOLOGY
    record["host_cpu_cores"] = os.cpu_count()
    record[section] = payload
    BENCH_PATH.write_text(json.dumps(record, indent=2) + "\n")


def _measure(factory) -> dict:
    """Best-of-N critical path (and the matching wall clock) for one
    shard count; ``factory()`` runs the workload and returns its
    ShardRunResult."""
    best = None
    for _round in range(ROUNDS):
        start = time.perf_counter()
        run = factory()
        wall = time.perf_counter() - start
        sample = {
            "makespan_sec": _critical_path(run),
            "wall_sec": wall,
            "events": run.total_events,
            "rounds": run.rounds,
            "workers": run.workers,
            "coordinator_cpu_sec": run.coordinator_cpu,
        }
        if best is None or sample["makespan_sec"] < best["makespan_sec"]:
            best = sample
    # Experiment-level decompositions run their sample worlds as nested
    # Simulations the engine's event accounting cannot see; events/sec
    # is meaningless there (None), CPU critical path is not.
    best["events_per_sec"] = (best["events"] / best["makespan_sec"]
                              if best["events"] else None)
    return best


def _speedup_section(samples: dict, workload: str) -> tuple:
    """(per-shard JSON dict, speedups) plus the determinism assertions."""
    events = {s["events"] for s in samples.values()}
    rounds = {s["rounds"] for s in samples.values()}
    assert len(events) == 1 and len(rounds) == 1, workload

    base = samples[1]["makespan_sec"]
    speedups = {shards: base / samples[shards]["makespan_sec"]
                for shards in SHARD_COUNTS}
    payload = {
        "workload": workload,
        "shards": {
            str(shards): {
                "makespan_sec": round(sample["makespan_sec"], 4),
                "critical_path_events_per_sec":
                    None if sample["events_per_sec"] is None
                    else round(sample["events_per_sec"], 1),
                "wall_sec": round(sample["wall_sec"], 3),
                "coordinator_cpu_sec":
                    round(sample["coordinator_cpu_sec"], 4),
                "workers": sample["workers"],
                "speedup_vs_1_shard": round(speedups[shards], 3),
            }
            for shards, sample in samples.items()
        },
        "events_per_run": samples[1]["events"],
        "rounds_per_run": samples[1]["rounds"],
    }
    return payload, speedups


def _report_speedups(report, title: str, samples: dict, speedups: dict):
    lines = ["%s (critical path, best of %d):" % (title, ROUNDS)]
    for shards in SHARD_COUNTS:
        sample = samples[shards]
        rate = ("%8.0f ev/s" % sample["events_per_sec"]
                if sample["events_per_sec"] is not None
                else "       - ev/s")
        lines.append(
            "  %d shard%s: makespan %6.3fs  %s  "
            "speedup %.2fx  (wall %6.3fs)"
            % (shards, " " if shards == 1 else "s",
               sample["makespan_sec"], rate,
               speedups[shards], sample["wall_sec"]))
    report("\n".join(lines))


def _assert_floors(workload: str, speedups: dict):
    for shards, floor in MIN_SPEEDUP[workload].items():
        assert speedups[shards] >= floor, (
            "%s: %d-shard critical-path speedup %.2fx is below the "
            "%.1fx floor" % (workload, shards, speedups[shards], floor))


def test_sharded_throughput_fleet(report):
    try:
        samples = {
            shards: _measure(
                lambda shards=shards: run_fleet(shards=shards,
                                                **FLEET).run)
            for shards in SHARD_COUNTS}
    finally:
        shutdown_warm_group()

    payload, speedups = _speedup_section(
        samples, "fleet: %(sites)d sites x %(sessions)d sessions, "
                 "seed %(seed)d" % FLEET)
    payload["min_speedup_required"] = {
        str(k): v for k, v in MIN_SPEEDUP["fleet"].items()}
    _merge_bench("fleet", payload)
    _report_speedups(report, "Sharded engine throughput [fleet]",
                     samples, speedups)
    _assert_floors("fleet", speedups)


def test_sharded_throughput_table2(report):
    try:
        samples = {
            shards: _measure(
                lambda shards=shards: table2_shard_run(
                    shards=shards, **TABLE2)[1])
            for shards in SHARD_COUNTS}
    finally:
        shutdown_warm_group()

    payload, speedups = _speedup_section(
        samples, "table2: 6 cells x %(samples)d samples, seed "
                 "%(seed)d, shard model %(shard_model)s" % TABLE2)
    payload["min_speedup_required"] = {
        str(k): v for k, v in MIN_SPEEDUP["table2"].items()}
    _merge_bench("table2", payload)
    _report_speedups(report, "Sharded engine throughput [table2]",
                     samples, speedups)
    _assert_floors("table2", speedups)


def test_adaptive_window_rounds(report):
    """Record what earliest-cross-send forecasts buy the fleet's round
    schedule; the fast regression guard lives in the tier-1 suite
    (tests/experiments/test_fleet.py), this archives the numbers."""
    try:
        fixed = run_fleet(adaptive=False, **FLEET).run
        adaptive = run_fleet(adaptive=True, **FLEET).run
    finally:
        shutdown_warm_group()

    assert adaptive.end_time == fixed.end_time
    assert adaptive.messages_delivered == fixed.messages_delivered
    assert adaptive.rounds <= fixed.rounds
    payload = {
        "workload": "fleet: %(sites)d sites x %(sessions)d sessions, "
                    "seed %(seed)d" % FLEET,
        "rounds_fixed_windows": fixed.rounds,
        "rounds_adaptive_windows": adaptive.rounds,
        "rounds_saved": fixed.rounds - adaptive.rounds,
        "coordinator_cpu_fixed_sec": round(fixed.coordinator_cpu, 4),
        "coordinator_cpu_adaptive_sec":
            round(adaptive.coordinator_cpu, 4),
    }
    _merge_bench("adaptive_windows", payload)
    report("Adaptive windows [fleet]: %d rounds fixed -> %d adaptive "
           "(%d saved)" % (fixed.rounds, adaptive.rounds,
                           payload["rounds_saved"]))
