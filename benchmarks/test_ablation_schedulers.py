"""A2: enforcement-mechanism ablation (Section 3.2, resource control).

One compiled owner policy — local work keeps half the machine, two grid
VMs split the other half 3:1 — enforced by each mechanism the paper
lists: processor-sharing group caps, a compiled periodic real-time
schedule, lottery scheduling, weighted fair queueing, and coarse
SIGSTOP/SIGCONT duty-cycling.
"""

from repro.core.reporting import format_table
from repro.experiments.ablations import MECHANISMS, run_scheduler_ablation


def test_ablation_schedulers(benchmark, report):
    rows = benchmark.pedantic(run_scheduler_ablation,
                              kwargs={"duration": 400.0, "seed": 0},
                              rounds=1, iterations=1)

    table_rows = [[r.mechanism, r.vm, "%.3f" % r.target,
                   "%.3f" % r.achieved, "%.3f" % r.error] for r in rows]
    report(format_table(
        ["Mechanism", "VM", "Target share", "Achieved", "Abs error"],
        table_rows,
        title="A2: owner-policy enforcement accuracy by mechanism"))

    by_mechanism = {}
    for row in rows:
        by_mechanism.setdefault(row.mechanism, []).append(row)
    assert set(by_mechanism) == set(MECHANISMS)

    # Precise mechanisms: caps, periodic reservations, WFQ within 2%.
    for mechanism in ("group-cap", "periodic", "wfq"):
        for row in by_mechanism[mechanism]:
            assert row.error < 0.02, (mechanism, row.vm, row.achieved)

    # Lottery: probabilistically correct (within 5% over this horizon).
    for row in by_mechanism["lottery"]:
        assert row.error < 0.05

    # SIGSTOP/SIGCONT is the crude one: it duty-cycles the VMM but
    # cannot stop best-effort local load from stealing its windows, so
    # it substantially under-delivers under contention — the reason the
    # paper calls it only "a coarse-grain schedule".
    sigstop_errors = [row.error for row in by_mechanism["sigstop"]]
    precise_errors = [row.error for row in by_mechanism["wfq"]]
    assert min(sigstop_errors) > 4 * max(max(precise_errors), 1e-3)
    for row in by_mechanism["sigstop"]:
        assert row.achieved < row.target  # under-delivers, never over
