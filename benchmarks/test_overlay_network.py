"""O1: the self-optimizing overlay among remote VMs (Section 3.3).

Random multi-site topologies with policy-routing penalties on a subset
of direct paths; the overlay measures pairwise latencies and relays
through members when a detour beats the direct Internet path.
"""

from repro.core.reporting import format_table
from repro.experiments.overlay_experiment import run_overlay_experiment


def test_overlay_network(benchmark, report):
    trials = benchmark.pedantic(
        run_overlay_experiment,
        kwargs={"members": 6, "trials": 8, "penalty_probability": 0.3,
                "seed": 0},
        rounds=1, iterations=1)

    rows = [[i, t.pairs, t.pairs_improved,
             "%.0f%%" % (100 * t.improvement_fraction),
             "%.1f" % (1e3 * t.mean_direct_latency),
             "%.1f" % (1e3 * t.mean_overlay_latency),
             "%.1f" % (1e3 * t.max_improvement)]
            for i, t in enumerate(trials)]
    report(format_table(
        ["Trial", "Pairs", "Improved", "Frac", "Direct(ms)",
         "Overlay(ms)", "Max saving(ms)"],
        rows,
        title="O1: overlay routing quality over random penalized WANs"))

    # The overlay never does worse than the direct path...
    for trial in trials:
        assert trial.mean_overlay_latency \
            <= trial.mean_direct_latency + 1e-9
    # ... and with 30% of paths penalized it finds real detours.
    assert sum(t.pairs_improved for t in trials) > 0
    improved_trials = [t for t in trials if t.pairs_improved]
    assert len(improved_trials) >= len(trials) // 2
    # Where it improves, the saving is substantial (tens of ms).
    assert max(t.max_improvement for t in trials) > 0.03
