"""A4: sensitivity of the VM overhead to trap-and-emulate costs.

Section 2.3 argues the measured overheads are an artifact of the VMM
implementation, reducible by "VM assists and in-memory network
hyper-sockets".  Sweep the per-event emulation costs from 1/4x to 4x
around the calibrated VMware-3.0a-era values and watch SPECclimate's
overhead move with them.
"""

from repro.core.reporting import format_table
from repro.experiments.ablations import run_vmm_cost_sensitivity


def test_ablation_vmm_costs(benchmark, report):
    points = benchmark.pedantic(
        run_vmm_cost_sensitivity,
        kwargs={"multipliers": (0.25, 0.5, 1.0, 2.0, 4.0),
                "scale": 0.25, "seed": 0},
        rounds=1, iterations=1)

    rows = [["%.2fx" % p.multiplier, "%.2f%%" % (100 * p.overhead)]
            for p in points]
    report(format_table(
        ["Trap-cost multiplier", "SPECclimate VM overhead"],
        rows,
        title="A4: macro overhead vs per-event emulation cost"))

    overheads = [p.overhead for p in points]
    # Overhead grows monotonically with emulation cost.
    assert overheads == sorted(overheads)
    baseline = next(p for p in points if p.multiplier == 1.0)
    quarter = next(p for p in points if p.multiplier == 0.25)
    quadruple = next(p for p in points if p.multiplier == 4.0)
    # The calibrated point sits at the paper's ~4%.
    assert 0.03 < baseline.overhead < 0.05
    # Optimized VMMs (assists) push it well under 2%...
    assert quarter.overhead < 0.02
    # ... and a clumsy VMM would show the >10% the paper warns about
    # for system-heavy workloads.
    assert quadruple.overhead > 0.10
    # Near-proportional scaling: events x cost is the whole story.
    assert quadruple.overhead / baseline.overhead > 3.0
