"""Shared fixtures for the benchmark harness.

Every benchmark regenerates one of the paper's tables/figures, prints it
to the terminal (bypassing capture so it is visible in a plain
``pytest benchmarks/ --benchmark-only`` run) and archives it under
``benchmarks/results/`` for EXPERIMENTS.md.
"""

import pathlib

import pytest

RESULTS_DIR = pathlib.Path(__file__).parent / "results"


def pytest_collection_modifyitems(items):
    """Everything under benchmarks/ carries the ``bench`` marker."""
    for item in items:
        item.add_marker(pytest.mark.bench)


@pytest.fixture
def report(request, capsys):
    """Print a result table live and archive it under results/."""

    def _report(text: str) -> None:
        RESULTS_DIR.mkdir(exist_ok=True)
        out = RESULTS_DIR / (request.node.name + ".txt")
        out.write_text(text + "\n")
        with capsys.disabled():
            print("\n" + text)

    return _report
