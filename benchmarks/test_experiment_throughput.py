"""End-to-end experiment benchmark: wall-clock at full replication counts.

Where ``test_kernel_throughput`` measures the kernel's synthetic hot
path, this suite times the paper's *experiments* exactly as a user runs
them — ``figure1`` and ``table2`` at their full ``samples=1000``
replication counts plus the staging ablation — and the single-world
observability scenarios in events/sec.  The numbers, along with the
pre-PR baselines recorded below, are written to
``BENCH_experiments.json`` at the repo root (``make bench-experiments``
regenerates it; see docs/performance.md for the schema).

The model layer under test is byte-deterministic: every run here
produces the same tables as the archived goldens, so wall-clock is the
only thing this file measures.
"""

import io
import contextlib
import json
import pathlib
import time

import pytest

from repro.experiments.ablations import run_staging_ablation
from repro.experiments.figure1 import run_figure1
from repro.experiments.table2 import run_table2
from repro.obs.runner import run_scenario

pytestmark = [pytest.mark.bench, pytest.mark.slow]

REPO_ROOT = pathlib.Path(__file__).resolve().parents[1]
BENCH_PATH = REPO_ROOT / "BENCH_experiments.json"

#: Wall-clock of the pre-PR model layer (commit f3a57b5: per-call
#: max-min refills, per-epoch share recomputation, per-block cache
#: calls, cold worker pools), measured on the reference container with
#: the exact invocations below.  Re-measure on the old tree if the
#: experiment shapes ever change.
PRE_PR_BASELINE = {
    "figure1_wall_s": 5.594,          # run_figure1(seed=42, samples=1000)
    "table2_wall_s": 230.387,         # run_table2(seed=42, samples=1000)
    "staging_ablation_wall_s": 1.096,  # run_staging_ablation()
    "figure1_scenario_events_per_sec": 42379.4,
    "table2_scenario_events_per_sec": 2717.7,
}


def _wall_seconds(fn, rounds: int) -> float:
    """Best-of-N wall time of ``fn()`` with stdout swallowed."""
    best = float("inf")
    for _round in range(rounds):
        sink = io.StringIO()
        start = time.perf_counter()
        with contextlib.redirect_stdout(sink):
            fn()
        best = min(best, time.perf_counter() - start)
    return best


def _scenario_events_per_sec(name: str, rounds: int = 5) -> float:
    """Best-of-N events/sec of one traced session life cycle."""
    best = 0.0
    for _round in range(rounds):
        start = time.perf_counter()
        sim = run_scenario(name, seed=42)
        elapsed = time.perf_counter() - start
        best = max(best, sim._next_id / elapsed)
    return best


def test_experiment_throughput(report):
    # Cheap experiments run first: the table2 round allocates heavily
    # and the GC pressure it leaves behind would tax measurements taken
    # after it (the baselines were recorded in fresh processes).
    walls = {
        "figure1": _wall_seconds(
            lambda: run_figure1(seed=42, samples=1000), rounds=3),
        "staging_ablation": _wall_seconds(run_staging_ablation, rounds=5),
    }
    scenarios = {
        "figure1_scenario": _scenario_events_per_sec("figure1"),
        "table2_scenario": _scenario_events_per_sec("table2"),
    }
    # table2 moves ~90 GB of simulated image data through the block
    # caches at samples=1000; one round is minutes, so no retries.
    walls["table2"] = _wall_seconds(
        lambda: run_table2(seed=42, samples=1000), rounds=1)

    record = {
        "invocations": {
            "figure1": "run_figure1(seed=42, samples=1000), best of 3",
            "table2": "run_table2(seed=42, samples=1000), single round",
            "staging_ablation": "run_staging_ablation(), best of 5",
            "scenarios": "obs run_scenario(name, seed=42), best of 5",
        },
        "baseline": dict(PRE_PR_BASELINE),
        "current": {
            "figure1_wall_s": round(walls["figure1"], 3),
            "table2_wall_s": round(walls["table2"], 3),
            "staging_ablation_wall_s": round(walls["staging_ablation"], 3),
            "figure1_scenario_events_per_sec":
                round(scenarios["figure1_scenario"], 1),
            "table2_scenario_events_per_sec":
                round(scenarios["table2_scenario"], 1),
        },
    }
    speedups = {}
    for key in ("figure1_wall_s", "table2_wall_s",
                "staging_ablation_wall_s"):
        speedups[key] = round(PRE_PR_BASELINE[key] / record["current"][key],
                              3)
    for key in ("figure1_scenario_events_per_sec",
                "table2_scenario_events_per_sec"):
        speedups[key] = round(record["current"][key] / PRE_PR_BASELINE[key],
                              3)
    record["speedup_vs_baseline"] = speedups
    BENCH_PATH.write_text(json.dumps(record, indent=2) + "\n")

    lines = ["Experiment wall-clock (seed 42, full replication counts):"]
    for key, label in (("figure1_wall_s", "figure1 @1000"),
                       ("table2_wall_s", "table2  @1000"),
                       ("staging_ablation_wall_s", "staging ablation")):
        lines.append("  %-17s %8.3fs   (baseline %8.3fs, %.2fx)"
                     % (label, record["current"][key],
                        PRE_PR_BASELINE[key], speedups[key]))
    for key, label in (("figure1_scenario_events_per_sec",
                        "figure1 scenario"),
                       ("table2_scenario_events_per_sec",
                        "table2 scenario")):
        lines.append("  %-17s %8.0f ev/s (baseline %8.0f, %.2fx)"
                     % (label, record["current"][key],
                        PRE_PR_BASELINE[key], speedups[key]))
    report("\n".join(lines))

    # Regression guard only (see test_kernel_throughput): the archived
    # record carries the trajectory; a hard 2x assert would be hostage
    # to CI noise.
    for key, speedup in speedups.items():
        assert speedup > 0.8, (
            "%s regressed to %.2fx of the recorded baseline"
            % (key, speedup))
