"""M1: migrating an entire computing environment (Sections 2.2/3.1/4).

A full six-step session runs a two-minute computation; halfway through,
the VM is suspended, its memory state and copy-on-write diff are staged
across the WAN, and it resumes on a compute host at another site — with
the guest's user-data mount still attached.
"""

from repro.core.reporting import format_table
from repro.experiments.migration_experiment import run_migration_experiment


def test_migration(benchmark, report):
    result = benchmark.pedantic(run_migration_experiment,
                                kwargs={"app_seconds": 120.0,
                                        "migrate_after": 40.0, "seed": 0},
                                rounds=1, iterations=1)

    report(format_table(
        ["Metric", "Value"],
        [
            ["application CPU demand", "%.1f s" % result.app_seconds],
            ["migration downtime", "%.1f s" % result.downtime],
            ["completion (migrated)", "%.1f s" % result.completion_time],
            ["completion (baseline)",
             "%.1f s" % result.baseline_completion_time],
            ["migration penalty", "%.1f s" % result.migration_penalty],
            ["guest mounts preserved", str(result.mounts_preserved)],
            ["final host", result.final_host],
        ],
        title="M1: mid-computation migration across sites"))

    # The computation survives the move and lands on the other host.
    assert result.final_host == "compute2"
    assert result.mounts_preserved
    # Work does not progress during downtime: the penalty is the
    # downtime (within scheduling noise), no more, no less.
    assert result.downtime > 0
    assert abs(result.migration_penalty - result.downtime) < 2.0
    # Downtime is dominated by shipping 128 MB over the 2.5 MB/s WAN
    # (~54 s) plus checkpoint/restore disk I/O; it stays under 2 min.
    assert 50.0 < result.downtime < 120.0
